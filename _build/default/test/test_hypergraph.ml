(* Tests for the hypergraph substrate: GYO, β-acyclicity (Fig. 3),
   components, join forests, relation trees, tuple graphs and pivots. *)

open Util
module R = Relational
module H = Hypergraph

let mk edges = H.Hgraph.make ~edges ()

(* ---- GYO / acyclicity ---- *)

let test_single_edge () =
  let g = mk [ ("e", [ "a"; "b"; "c" ]) ] in
  Alcotest.(check bool) "alpha" true (H.Hgraph.is_acyclic g);
  Alcotest.(check bool) "beta" true (H.Hgraph.is_beta_acyclic g)

let test_path () =
  let g = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("e3", [ "c"; "d" ]) ] in
  Alcotest.(check bool) "alpha" true (H.Hgraph.is_acyclic g);
  Alcotest.(check bool) "beta" true (H.Hgraph.is_beta_acyclic g)

let test_triangle () =
  let g = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("e3", [ "a"; "c" ]) ] in
  Alcotest.(check bool) "alpha cyclic" false (H.Hgraph.is_acyclic g);
  Alcotest.(check bool) "beta cyclic" false (H.Hgraph.is_beta_acyclic g)

(* Fig. 3 of the paper *)
let fig3_q1 =
  mk [ ("Q1", [ "T1"; "T2"; "T3" ]); ("Q3", [ "T1"; "T2" ]); ("Q4", [ "T1"; "T3" ]);
       ("Q5", [ "T2"; "T3" ]) ]

let fig3_q2 = mk [ ("Q1", [ "T1"; "T2"; "T3" ]); ("Q3", [ "T1"; "T2" ]); ("Q5", [ "T2"; "T3" ]) ]
let fig3_q3 = mk [ ("Q1", [ "T1"; "T2"; "T3" ]); ("Q2", [ "T1"; "T2"; "T4" ]); ("Q5", [ "T2"; "T3" ]) ]

let test_fig3 () =
  (* Q1: alpha-acyclic (big edge covers the triangle) but NOT a hypertree *)
  Alcotest.(check bool) "Q1 alpha" true (H.Hgraph.is_acyclic fig3_q1);
  Alcotest.(check bool) "Q1 not hypertree" false (H.Hgraph.is_forest fig3_q1);
  Alcotest.(check bool) "Q2 hypertree" true (H.Hgraph.is_forest fig3_q2);
  Alcotest.(check bool) "Q3 hypertree" true (H.Hgraph.is_forest fig3_q3)

let test_components () =
  let g = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "c"; "d" ]); ("e3", [ "d"; "e" ]) ] in
  let comps = H.Hgraph.components g in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let sizes = List.sort Int.compare (List.map H.Hgraph.num_vertices comps) in
  Alcotest.(check (list int)) "sizes" [ 2; 3 ] sizes

let test_join_forest () =
  match H.Hgraph.join_forest fig3_q2 with
  | None -> Alcotest.fail "expected join forest"
  | Some rows ->
    Alcotest.(check int) "three rows" 3 (List.length rows);
    let roots = List.filter (fun (_, p) -> p = None) rows in
    Alcotest.(check int) "one root" 1 (List.length roots)

let test_join_forest_cyclic () =
  let g = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("e3", [ "a"; "c" ]) ] in
  Alcotest.(check bool) "no join forest for a cycle" true (H.Hgraph.join_forest g = None)

let test_duplicate_labels_rejected () =
  Alcotest.(check bool) "duplicate labels" true
    (try ignore (mk [ ("e", [ "a" ]); ("e", [ "b" ]) ]); false
     with Invalid_argument _ -> true)

(* ---- dual hypergraph of query sets ---- *)

let schema =
  R.Schema.Db.of_list
    (List.init 4 (fun i ->
         R.Schema.make_anon ~name:(Printf.sprintf "T%d" (i + 1)) ~arity:2 ~key:[ 0 ]))

let test_dual_of_queries () =
  ignore schema;
  let qs =
    [
      Cq.Parser.query_of_string "Q1(X, Y, Z) :- T1(X, Y), T2(Y, Z), T3(Z, X)";
      Cq.Parser.query_of_string "Q2(X, Y) :- T1(X, Y), T2(Y, X)";
    ]
  in
  let g = H.Dual.of_queries qs in
  Alcotest.(check int) "vertices = relations" 3 (H.Hgraph.num_vertices g);
  Alcotest.(check int) "edges = queries" 2 (H.Hgraph.num_edges g)

(* ---- relation trees ---- *)

let test_rel_tree_chain () =
  let qs =
    [
      Cq.Parser.query_of_string "Q1(X, Y, Z) :- T1(X, Y), T2(Y, Z)";
      Cq.Parser.query_of_string "Q2(X, Y, Z) :- T2(X, Y), T3(Y, Z)";
    ]
  in
  match H.Rel_tree.of_queries ~root:"T1" qs with
  | None -> Alcotest.fail "expected a forest"
  | Some t ->
    Alcotest.(check int) "depth T1" 0 (H.Rel_tree.depth t "T1");
    Alcotest.(check int) "depth T2" 1 (H.Rel_tree.depth t "T2");
    Alcotest.(check int) "depth T3" 2 (H.Rel_tree.depth t "T3");
    Alcotest.(check (option string)) "parent T3" (Some "T2") (H.Rel_tree.parent t "T3");
    Alcotest.(check (list string)) "order" [ "T1"; "T2"; "T3" ] (H.Rel_tree.by_increasing_depth t)

let test_rel_tree_cycle () =
  let qs =
    [
      Cq.Parser.query_of_string "Q1(X, Y) :- T1(X, Y), T2(Y, X)";
      Cq.Parser.query_of_string "Q2(X, Y) :- T2(X, Y), T3(Y, X)";
      Cq.Parser.query_of_string "Q3(X, Y) :- T3(X, Y), T1(Y, X)";
    ]
  in
  Alcotest.(check bool) "cycle rejected" true (H.Rel_tree.of_queries qs = None)

let test_rel_tree_self_join () =
  let qs = [ Cq.Parser.query_of_string "Q(X, Y, Z) :- T1(X, Y), T1(Y, Z)" ] in
  Alcotest.(check bool) "self-join rejected" true (H.Rel_tree.of_queries qs = None)

let test_rel_tree_two_components () =
  let qs =
    [
      Cq.Parser.query_of_string "Q1(X, Y, Z) :- T1(X, Y), T2(Y, Z)";
      Cq.Parser.query_of_string "Q2(X, Y) :- T3(X, Y)";
    ]
  in
  match H.Rel_tree.of_queries qs with
  | None -> Alcotest.fail "expected forest"
  | Some t -> Alcotest.(check int) "two roots" 2 (List.length (H.Rel_tree.roots t))

(* ---- tuple graphs / pivots ---- *)

let t name k = st name [ k ]

let test_tuple_graph_forest () =
  let g =
    H.Tuple_graph.of_witness_paths
      [ [ t "A" "1"; t "B" "1" ]; [ t "A" "1"; t "B" "2" ]; [ t "B" "1"; t "C" "1" ] ]
  in
  Alcotest.(check bool) "forest" true (H.Tuple_graph.is_forest g);
  Alcotest.(check int) "vertices" 4 (H.Tuple_graph.num_vertices g);
  Alcotest.(check int) "edges" 3 (H.Tuple_graph.num_edges g)

let test_tuple_graph_cycle () =
  let g =
    H.Tuple_graph.of_witness_paths
      [ [ t "A" "1"; t "B" "1" ]; [ t "B" "1"; t "C" "1" ]; [ t "C" "1"; t "A" "1" ] ]
  in
  Alcotest.(check bool) "cycle" false (H.Tuple_graph.is_forest g)

let test_rooted_depth_paths () =
  let g =
    H.Tuple_graph.of_witness_paths
      [ [ t "A" "1"; t "B" "1"; t "C" "1" ]; [ t "B" "1"; t "D" "1" ] ]
  in
  match H.Tuple_graph.Rooted.at g (t "A" "1") with
  | None -> Alcotest.fail "expected rooted tree"
  | Some r ->
    Alcotest.(check int) "depth C" 2 (H.Tuple_graph.Rooted.depth r (t "C" "1"));
    Alcotest.(check int) "depth D" 2 (H.Tuple_graph.Rooted.depth r (t "D" "1"));
    Alcotest.check stuple_set "path to D"
      (R.Stuple.Set.of_list [ t "A" "1"; t "B" "1"; t "D" "1" ])
      (H.Tuple_graph.Rooted.path_set r (t "D" "1"))

let test_find_pivot_positive () =
  let g =
    H.Tuple_graph.of_witness_paths
      [ [ t "A" "1"; t "B" "1"; t "C" "1" ]; [ t "A" "1"; t "B" "2" ] ]
  in
  let witnesses =
    [
      R.Stuple.Set.of_list [ t "A" "1"; t "B" "1"; t "C" "1" ];
      R.Stuple.Set.of_list [ t "A" "1"; t "B" "2" ];
    ]
  in
  Alcotest.(check (option stuple)) "pivot is the root" (Some (t "A" "1"))
    (H.Tuple_graph.find_pivot g witnesses)

let test_find_pivot_negative () =
  (* two witnesses overlapping in the middle: no common tuple from which
     both are root paths *)
  let g =
    H.Tuple_graph.of_witness_paths
      [ [ t "A" "1"; t "B" "1" ]; [ t "B" "1"; t "C" "1" ] ]
  in
  let witnesses =
    [
      R.Stuple.Set.of_list [ t "A" "1"; t "B" "1" ];
      R.Stuple.Set.of_list [ t "B" "1"; t "C" "1" ];
    ]
  in
  (* B1 is common to both and both are paths from B1 — so this IS a pivot *)
  Alcotest.(check (option stuple)) "pivot in the middle" (Some (t "B" "1"))
    (H.Tuple_graph.find_pivot g witnesses);
  (* but witnesses that skip the common tuple admit none *)
  let g2 =
    H.Tuple_graph.of_witness_paths [ [ t "A" "1"; t "B" "1" ]; [ t "C" "1"; t "D" "1" ] ]
  in
  let w2 =
    [
      R.Stuple.Set.of_list [ t "A" "1"; t "B" "1" ];
      R.Stuple.Set.of_list [ t "C" "1"; t "D" "1" ];
    ]
  in
  Alcotest.(check (option stuple)) "disjoint witnesses: no pivot" None
    (H.Tuple_graph.find_pivot g2 w2)

let test_pivot_requires_root_path () =
  (* witness {A1, C1} is not a contiguous path from A1 (skips B1) *)
  let g = H.Tuple_graph.of_witness_paths [ [ t "A" "1"; t "B" "1"; t "C" "1" ] ] in
  let witnesses = [ R.Stuple.Set.of_list [ t "A" "1"; t "C" "1" ] ] in
  Alcotest.(check (option stuple)) "no pivot" None (H.Tuple_graph.find_pivot g witnesses)

(* random trees are forests; adding any extra edge between existing
   non-adjacent vertices breaks forestness *)
let prop_random_tree_forest =
  qcheck ~count:50 "random witness trees are forests"
    QCheck2.Gen.(int_range 2 30)
    (fun n ->
      let rng = rng n in
      let verts = Array.init n (fun i -> t "V" (string_of_int i)) in
      let g = ref H.Tuple_graph.empty in
      g := H.Tuple_graph.add_vertex !g verts.(0);
      for i = 1 to n - 1 do
        let p = Random.State.int rng i in
        g := H.Tuple_graph.add_edge !g verts.(i) verts.(p)
      done;
      H.Tuple_graph.is_forest !g)

let suite =
  [
    Alcotest.test_case "gyo: single edge" `Quick test_single_edge;
    Alcotest.test_case "gyo: path" `Quick test_path;
    Alcotest.test_case "gyo: triangle" `Quick test_triangle;
    Alcotest.test_case "fig3: hypertree classification" `Quick test_fig3;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "join forest" `Quick test_join_forest;
    Alcotest.test_case "join forest: cyclic input" `Quick test_join_forest_cyclic;
    Alcotest.test_case "duplicate edge labels rejected" `Quick test_duplicate_labels_rejected;
    Alcotest.test_case "dual hypergraph of queries" `Quick test_dual_of_queries;
    Alcotest.test_case "rel tree: chain" `Quick test_rel_tree_chain;
    Alcotest.test_case "rel tree: cycle rejected" `Quick test_rel_tree_cycle;
    Alcotest.test_case "rel tree: self-join rejected" `Quick test_rel_tree_self_join;
    Alcotest.test_case "rel tree: two components" `Quick test_rel_tree_two_components;
    Alcotest.test_case "tuple graph: forest" `Quick test_tuple_graph_forest;
    Alcotest.test_case "tuple graph: cycle" `Quick test_tuple_graph_cycle;
    Alcotest.test_case "tuple graph: rooted depths and paths" `Quick test_rooted_depth_paths;
    Alcotest.test_case "pivot: positive case" `Quick test_find_pivot_positive;
    Alcotest.test_case "pivot: middle and none" `Quick test_find_pivot_negative;
    Alcotest.test_case "pivot: requires root paths" `Quick test_pivot_requires_root_path;
    prop_random_tree_forest;
  ]

(* ---- Fagin's full acyclicity hierarchy ---- *)

let test_acyclicity_hierarchy () =
  (* {ab, bc, abc}: beta-acyclic but NOT gamma-acyclic *)
  let beta_not_gamma = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("e3", [ "a"; "b"; "c" ]) ] in
  Alcotest.(check bool) "beta holds" true (H.Hgraph.is_beta_acyclic beta_not_gamma);
  Alcotest.(check bool) "gamma fails" false (H.Hgraph.is_gamma_acyclic beta_not_gamma);
  (* {ab, abc}: gamma-acyclic but NOT Berge-acyclic *)
  let gamma_not_berge = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "a"; "b"; "c" ]) ] in
  Alcotest.(check bool) "gamma holds" true (H.Hgraph.is_gamma_acyclic gamma_not_berge);
  Alcotest.(check bool) "berge fails" false (H.Hgraph.is_berge_acyclic gamma_not_berge);
  (* a plain path: everything holds *)
  let path = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]) ] in
  Alcotest.(check bool) "path berge" true (H.Hgraph.is_berge_acyclic path);
  Alcotest.(check bool) "path gamma" true (H.Hgraph.is_gamma_acyclic path);
  (* a triangle: nothing holds (except alpha fails too) *)
  let tri = mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("e3", [ "a"; "c" ]) ] in
  Alcotest.(check bool) "triangle gamma" false (H.Hgraph.is_gamma_acyclic tri);
  Alcotest.(check bool) "triangle berge" false (H.Hgraph.is_berge_acyclic tri)

let test_hierarchy_implications () =
  (* berge => gamma => beta => alpha on a gallery of small hypergraphs *)
  let gallery =
    [
      mk [ ("e", [ "a" ]) ];
      mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("e3", [ "c"; "d" ]) ];
      mk [ ("e1", [ "a"; "b"; "c" ]); ("e2", [ "c"; "d" ]) ];
      mk [ ("e1", [ "a"; "b" ]); ("e2", [ "a"; "b"; "c" ]) ];
      mk [ ("e1", [ "a"; "b" ]); ("e2", [ "b"; "c" ]); ("e3", [ "a"; "b"; "c" ]) ];
      fig3_q1; fig3_q2; fig3_q3;
    ]
  in
  List.iter
    (fun g ->
      let berge = H.Hgraph.is_berge_acyclic g in
      let gamma = H.Hgraph.is_gamma_acyclic g in
      let beta = H.Hgraph.is_beta_acyclic g in
      let alpha = H.Hgraph.is_acyclic g in
      Alcotest.(check bool) "berge => gamma" true ((not berge) || gamma);
      Alcotest.(check bool) "gamma => beta" true ((not gamma) || beta);
      Alcotest.(check bool) "beta => alpha" true ((not beta) || alpha))
    gallery

let hierarchy_suite =
  [
    Alcotest.test_case "fagin hierarchy: separating examples" `Quick test_acyclicity_hierarchy;
    Alcotest.test_case "fagin hierarchy: implications" `Quick test_hierarchy_implications;
  ]

let suite = suite @ hierarchy_suite
