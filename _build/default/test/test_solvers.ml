(* Tests for the solvers: brute force, single-query, general approximation,
   primal-dual (Alg. 1), LowDeg (Algs. 2-3), DP (Alg. 4), balanced. *)

open Util
module R = Relational
module D = Deleprop

let forest_spec =
  { Workload.Forest_family.default with num_relations = 4; tuples_per_relation = 6;
    num_queries = 3; max_path_len = 3 }

let forest_problem seed =
  let rng = rng seed in
  (Workload.Forest_family.generate ~rng forest_spec).Workload.Forest_family.problem

let pivot_problem seed =
  let rng = rng seed in
  Workload.Pivot_family.generate ~rng
    { Workload.Pivot_family.default with depth = 3; tuples_per_relation = 6 }

let star_problem seed =
  let rng = rng seed in
  Workload.Random_family.generate ~rng
    { Workload.Random_family.default with fact_tuples = 8; dim_tuples = 4; num_queries = 3 }

let seeds = QCheck2.Gen.int_range 0 10_000

(* ---- brute force engines agree ---- *)

let prop_brute_engines_agree =
  qcheck ~count:40 "branch-and-bound = subset enumeration" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      if R.Stuple.Set.cardinal (D.Provenance.candidates prov) > 14 then true
      else
        match D.Brute.solve prov, D.Brute.solve_enum prov with
        | Some a, Some b ->
          feq a.D.Brute.outcome.D.Side_effect.cost b.D.Brute.outcome.D.Side_effect.cost
        | None, None -> true
        | _ -> false)

(* ---- feasibility of every solver ---- *)

let prop_all_solvers_feasible =
  qcheck ~count:60 "all solvers return feasible deletions" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      let pd = D.Primal_dual.solve prov in
      let ld = D.Lowdeg.solve prov in
      let ga = D.General_approx.solve prov in
      let gm = D.Single_query.solve_greedy_multi prov in
      pd.D.Primal_dual.outcome.D.Side_effect.feasible
      && ld.D.Lowdeg.outcome.D.Side_effect.feasible
      && (match ga with Some g -> g.D.General_approx.outcome.D.Side_effect.feasible | None -> false)
      && gm.D.Single_query.outcome.D.Side_effect.feasible)

let prop_star_solvers_feasible =
  qcheck ~count:40 "non-forest instances: solvers still feasible" seeds (fun seed ->
      let p = star_problem seed in
      let prov = D.Provenance.build p in
      let pd = D.Primal_dual.solve prov in
      let ga = D.General_approx.solve prov in
      pd.D.Primal_dual.outcome.D.Side_effect.feasible
      && (match ga with Some g -> g.D.General_approx.outcome.D.Side_effect.feasible | None -> false))

(* ---- primal-dual: Theorem 3 ratio and minimality ---- *)

let prop_primal_dual_ratio =
  qcheck ~count:60 "primal-dual within factor l on forest cases" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      match D.Brute.solve prov with
      | None -> false
      | Some opt ->
        let pd = D.Primal_dual.solve prov in
        let l = float_of_int (D.Problem.max_arity p) in
        pd.D.Primal_dual.outcome.D.Side_effect.cost
        <= (l *. opt.D.Brute.outcome.D.Side_effect.cost) +. 1e-9)

let prop_primal_dual_minimal =
  qcheck ~count:40 "primal-dual solutions are inclusion-minimal" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      let pd = D.Primal_dual.solve prov in
      R.Stuple.Set.for_all
        (fun t ->
          let without = R.Stuple.Set.remove t pd.D.Primal_dual.deletion in
          not (D.Side_effect.eval prov without).D.Side_effect.feasible)
        pd.D.Primal_dual.deletion)

let test_primal_dual_free_tuples () =
  (* tuples carrying no preserved view tuple are deleted for free *)
  let schema =
    R.Schema.Db.of_list [ R.Schema.make ~name:"A" ~attrs:[ "k"; "v" ] ~key:[ 0 ] ]
  in
  let db =
    R.Instance.of_alist schema [ ("A", [ R.Tuple.ints [ 1; 1 ]; R.Tuple.ints [ 2; 2 ] ]) ]
  in
  let q = Cq.Parser.query_of_string "Q(K, V) :- A(K, V)" in
  let p = D.Problem.make ~db ~queries:[ q ] ~deletions:[ ("Q", [ R.Tuple.ints [ 1; 1 ] ]) ] () in
  let prov = D.Provenance.build p in
  let pd = D.Primal_dual.solve prov in
  check_float "zero side effect" 0.0 pd.D.Primal_dual.outcome.D.Side_effect.cost;
  Alcotest.(check bool) "feasible" true pd.D.Primal_dual.outcome.D.Side_effect.feasible

(* ---- LowDeg: Theorem 4 ratio, Claim 2 prune bound ---- *)

let prop_lowdeg_ratio =
  qcheck ~count:60 "LowDegTreeVSETwo within 2*sqrt(||V||)" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      match D.Brute.solve prov with
      | None -> false
      | Some opt ->
        let ld = D.Lowdeg.solve prov in
        let bound = D.Lowdeg.bound p in
        let oc = opt.D.Brute.outcome.D.Side_effect.cost in
        ld.D.Lowdeg.outcome.D.Side_effect.cost <= (bound *. oc) +. 1e-9
        || (feq oc 0.0 && feq ld.D.Lowdeg.outcome.D.Side_effect.cost 0.0))

let prop_lowdeg_prune_bound =
  (* Claim 2: |R'_>| < sqrt(||V||) * tau for every tau *)
  qcheck ~count:40 "Claim 2 prune bound" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      let v = float_of_int (D.Problem.view_size p) in
      List.for_all
        (fun tau ->
          match D.Lowdeg.solve_with_tau prov ~tau with
          | None -> true
          | Some r -> float_of_int r.D.Lowdeg.pruned_wide <= (sqrt v *. float_of_int tau) +. 1e-9)
        [ 1; 2; 3; 5 ])

let test_lowdeg_infeasible_tau () =
  (* tau = 0 bars every tuple that has any preserved view tuple; build an
     instance where the only witness tuple is shared with a preserved tuple *)
  let p = Workload.Author_journal.scenario_q4 () in
  let prov = D.Provenance.build p in
  Alcotest.(check bool) "tau=0 infeasible" true (D.Lowdeg.solve_with_tau prov ~tau:0 = None);
  (* the sweep still succeeds *)
  let r = D.Lowdeg.solve prov in
  Alcotest.(check bool) "sweep feasible" true r.D.Lowdeg.outcome.D.Side_effect.feasible

(* ---- DP on pivot forests: exactness (Alg. 4) ---- *)

let prop_dp_exact =
  qcheck ~count:60 "DPTreeVSE = brute force on pivot forests" seeds (fun seed ->
      let p = pivot_problem seed in
      let prov = D.Provenance.build p in
      match D.Dp_tree.solve prov, D.Brute.solve prov with
      | Ok dp, Some opt ->
        feq dp.D.Dp_tree.outcome.D.Side_effect.cost opt.D.Brute.outcome.D.Side_effect.cost
        && dp.D.Dp_tree.outcome.D.Side_effect.feasible
        && feq dp.D.Dp_tree.optimum dp.D.Dp_tree.outcome.D.Side_effect.cost
      | _ -> false)

let prop_dp_balanced_exact =
  qcheck ~count:40 "balanced DP = balanced exact on pivot forests" seeds (fun seed ->
      let p = pivot_problem seed in
      let prov = D.Provenance.build p in
      match D.Balanced.solve_dp prov with
      | Error _ -> false
      | Ok dp ->
        let exact = D.Balanced.solve_exact prov in
        feq dp.D.Balanced.outcome.D.Side_effect.balanced_cost
          exact.D.Balanced.outcome.D.Side_effect.balanced_cost)

let test_dp_rejects_non_pivot () =
  (* star instances usually have no pivot structure; solve must not crash
     and must answer Ok or a structured error *)
  let p = star_problem 7 in
  let prov = D.Provenance.build p in
  match D.Dp_tree.solve prov with
  | Ok r -> Alcotest.(check bool) "if Ok then feasible" true r.D.Dp_tree.outcome.D.Side_effect.feasible
  | Error _ -> ()

(* ---- balanced ---- *)

let prop_balanced_exact_leq_standard =
  qcheck ~count:40 "balanced optimum <= standard optimum cost" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      match D.Brute.solve prov with
      | None -> false
      | Some std ->
        let bal = D.Balanced.solve_exact prov in
        (* a feasible standard solution is a candidate balanced solution *)
        bal.D.Balanced.outcome.D.Side_effect.balanced_cost
        <= std.D.Brute.outcome.D.Side_effect.cost +. 1e-9)

let prop_balanced_general_sound =
  qcheck ~count:40 "balanced general approx >= exact" seeds (fun seed ->
      let p = forest_problem seed in
      let prov = D.Provenance.build p in
      let approx = D.Balanced.solve_general prov in
      let exact = D.Balanced.solve_exact prov in
      approx.D.Balanced.outcome.D.Side_effect.balanced_cost +. 1e-9
      >= exact.D.Balanced.outcome.D.Side_effect.balanced_cost)

(* ---- single query ---- *)

let test_single_query_exact () =
  let p = Workload.Author_journal.scenario_q4 () in
  let prov = D.Provenance.build p in
  match D.Single_query.solve prov with
  | Error e -> Alcotest.failf "unexpected: %a" D.Single_query.pp_error e
  | Ok r ->
    check_float "optimal single-tuple deletion" 1.0 r.D.Single_query.outcome.D.Side_effect.cost

let prop_single_query_optimal =
  qcheck ~count:60 "single-query single-deletion solver is optimal" seeds (fun seed ->
      let rng = rng seed in
      let p =
        Workload.Random_family.generate_single ~rng
          { Workload.Random_family.default with fact_tuples = 8; dim_tuples = 4 }
      in
      let prov = D.Provenance.build p in
      if D.Vtuple.Set.is_empty prov.D.Provenance.bad then true
      else
        match D.Single_query.solve prov, D.Brute.solve prov with
        | Ok r, Some opt ->
          feq r.D.Single_query.outcome.D.Side_effect.cost opt.D.Brute.outcome.D.Side_effect.cost
        | Error _, _ -> false
        | _, None -> false)

let test_single_query_refusals () =
  let p = forest_problem 3 in
  let prov = D.Provenance.build p in
  (match D.Single_query.solve prov with
  | Error (D.Single_query.Not_single_query _) -> ()
  | Error (D.Single_query.Not_single_deletion _) -> ()
  | Ok _ -> Alcotest.fail "expected refusal on multi-query instance")

(* ---- general approx: Claim 1 bound ---- *)

let prop_general_approx_claim1 =
  qcheck ~count:60 "general approximation within Claim 1 bound" seeds (fun seed ->
      let p = star_problem seed in
      let prov = D.Provenance.build p in
      match D.Brute.solve prov, D.General_approx.solve prov with
      | Some opt, Some ga ->
        let oc = opt.D.Brute.outcome.D.Side_effect.cost in
        ga.D.General_approx.outcome.D.Side_effect.cost
        <= (ga.D.General_approx.claimed_bound *. oc) +. 1e-9
        || (feq oc 0.0 && feq ga.D.General_approx.outcome.D.Side_effect.cost 0.0)
      | _ -> false)

let suite =
  [
    prop_brute_engines_agree;
    prop_all_solvers_feasible;
    prop_star_solvers_feasible;
    prop_primal_dual_ratio;
    prop_primal_dual_minimal;
    Alcotest.test_case "primal-dual: free tuples" `Quick test_primal_dual_free_tuples;
    prop_lowdeg_ratio;
    prop_lowdeg_prune_bound;
    Alcotest.test_case "lowdeg: infeasible tau, feasible sweep" `Quick test_lowdeg_infeasible_tau;
    prop_dp_exact;
    prop_dp_balanced_exact;
    Alcotest.test_case "dp: non-pivot instances handled" `Quick test_dp_rejects_non_pivot;
    prop_balanced_exact_leq_standard;
    prop_balanced_general_sound;
    Alcotest.test_case "single query: Fig. 1 Q4" `Quick test_single_query_exact;
    prop_single_query_optimal;
    Alcotest.test_case "single query: refusals" `Quick test_single_query_refusals;
    prop_general_approx_claim1;
  ]
