(* Tests for the complexity-landscape extensions: functional dependencies,
   triads, head domination, weighted set cover, source side-effect,
   resilience, explanations, and the cleaning workload. *)

open Util
module R = Relational
module D = Deleprop
module SC = Setcover

let parse = Cq.Parser.query_of_string

(* ---- functional dependencies ---- *)

let abc = R.Schema.make ~name:"T" ~attrs:[ "a"; "b"; "c"; "d" ] ~key:[ 0 ]

let fd l r = R.Fd.make ~lhs:l ~rhs:r

let test_fd_closure () =
  let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ] ] in
  let c = R.Fd.closure fds (R.Fd.Attrs.of_list [ "a" ]) in
  Alcotest.(check (list string)) "a+ = abc" [ "a"; "b"; "c" ] (R.Fd.Attrs.elements c);
  Alcotest.(check bool) "a -> c implied" true (R.Fd.implies fds (fd [ "a" ] [ "c" ]));
  Alcotest.(check bool) "c -> a not implied" false (R.Fd.implies fds (fd [ "c" ] [ "a" ]))

let test_fd_keys () =
  let fds = [ fd [ "a" ] [ "b"; "c"; "d" ] ] in
  Alcotest.(check bool) "a is superkey" true (R.Fd.is_superkey abc fds [ "a" ]);
  Alcotest.(check bool) "a is candidate key" true (R.Fd.is_candidate_key abc fds [ "a" ]);
  Alcotest.(check bool) "ab superkey but not candidate" true
    (R.Fd.is_superkey abc fds [ "a"; "b" ] && not (R.Fd.is_candidate_key abc fds [ "a"; "b" ]));
  Alcotest.(check (list (list string))) "all candidate keys" [ [ "a" ] ]
    (R.Fd.candidate_keys abc fds)

let test_fd_multiple_keys () =
  (* a -> bcd and bc -> a: two candidate keys *)
  let fds = [ fd [ "a" ] [ "b"; "c"; "d" ]; fd [ "b"; "c" ] [ "a" ] ] in
  let keys = R.Fd.candidate_keys abc fds in
  Alcotest.(check bool) "a is a key" true (List.mem [ "a" ] keys);
  Alcotest.(check bool) "bc is a key" true (List.mem [ "b"; "c" ] keys);
  Alcotest.(check int) "exactly two" 2 (List.length keys)

let test_fd_satisfaction () =
  let s = R.Schema.make ~name:"T" ~attrs:[ "a"; "b" ] ~key:[ 0 ] in
  let rel = R.Relation.of_tuples s [ R.Tuple.ints [ 1; 10 ]; R.Tuple.ints [ 2; 10 ]; R.Tuple.ints [ 3; 30 ] ] in
  Alcotest.(check bool) "a -> b holds" true (R.Fd.satisfies rel (fd [ "a" ] [ "b" ]));
  Alcotest.(check bool) "b -> a fails" false (R.Fd.satisfies rel (fd [ "b" ] [ "a" ]));
  Alcotest.(check int) "one violating pair" 1 (List.length (R.Fd.violations rel (fd [ "b" ] [ "a" ])))

let test_fd_minimal_cover () =
  (* a->b, b->c, a->c : a->c is redundant *)
  let fds = [ fd [ "a" ] [ "b" ]; fd [ "b" ] [ "c" ]; fd [ "a" ] [ "c" ] ] in
  let cover = R.Fd.minimal_cover fds in
  Alcotest.(check int) "two FDs" 2 (List.length cover);
  List.iter (fun f -> Alcotest.(check bool) "still implied" true (R.Fd.implies cover f)) fds;
  (* extraneous lhs attribute: ab->c with a->b reduces to a->c... here:
     ab->c, a->b means b extraneous *)
  let cover2 = R.Fd.minimal_cover [ fd [ "a"; "b" ] [ "c" ]; fd [ "a" ] [ "b" ] ] in
  Alcotest.(check bool) "lhs reduced" true
    (List.exists (fun (f : R.Fd.t) -> f.lhs = [ "a" ] && f.rhs = [ "c" ]) cover2)

let test_fd_declared_key () =
  Alcotest.(check bool) "key implies all" true
    (R.Fd.implied_by_declared_key abc (fd [ "a" ] [ "d" ]));
  Alcotest.(check bool) "non-key lhs not implied" false
    (R.Fd.implied_by_declared_key abc (fd [ "b" ] [ "d" ]))

(* ---- triads / head domination ---- *)

let test_triad_triangle () =
  let q = parse "Q(X, Y, Z) :- R(X, Y), S(Y, Z), T(Z, X)" in
  Alcotest.(check bool) "triangle has a triad" false (Cq.Structure.is_triad_free q);
  Alcotest.(check int) "exactly one" 1 (List.length (Cq.Structure.triads q))

let test_triad_chain () =
  let q = parse "Q(X, W) :- R1(X, Y), R2(Y, Z), R3(Z, W)" in
  Alcotest.(check bool) "chains are triad-free" true (Cq.Structure.is_triad_free q)

let test_triad_star () =
  let q = parse "Q(X) :- R1(X, A), R2(X, B), R3(X, C)" in
  (* every pair shares only X, which occurs in the third atom: no path
     avoiding it *)
  Alcotest.(check bool) "stars are triad-free" true (Cq.Structure.is_triad_free q)

let test_triad_disjoint_links () =
  (* pairwise private link variables: a genuine triad without a triangle
     of binary atoms — uses ternary atoms *)
  (* R-S share B (not in T), S-T share C (not in R), R-T share A (not in S) *)
  let q = parse "Q(X) :- R(A, B, X), S(B, C, Y), T(C, A, Z)" in
  Alcotest.(check bool) "pairwise private links form a triad" false
    (Cq.Structure.is_triad_free q)

let test_head_domination () =
  (* project-free: trivially head dominated *)
  let pf = parse "Q(X, Y) :- R(X, Y)" in
  Alcotest.(check bool) "project-free dominated" true (Cq.Structure.has_head_domination pf);
  (* paper's Q3: one existential component {Y, W} spanning both atoms;
     head vars X and Z not together in any atom: not dominated *)
  let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  Alcotest.(check bool) "Q3 not dominated" false (Cq.Structure.has_head_domination q3);
  (* dominated: the component's head vars all sit in one atom *)
  let dom = parse "Q(X) :- R(X, Y), S(Y)" in
  Alcotest.(check bool) "dominated" true (Cq.Structure.has_head_domination dom)

let test_existential_components () =
  let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  match Cq.Structure.existential_components q3 with
  | [ (vars, atoms) ] ->
    Alcotest.(check (list string)) "one component {W, Y}" [ "W"; "Y" ]
      (Cq.Term.Vars.elements vars);
    Alcotest.(check int) "spanning both atoms" 2 (List.length atoms)
  | l -> Alcotest.failf "expected one component, got %d" (List.length l)

(* ---- weighted set cover ---- *)

let wc_instance sets ~universe =
  SC.Weighted_cover.make_unit ~universe
    (List.mapi
       (fun i els ->
         { SC.Weighted_cover.label = Printf.sprintf "S%d" i; elements = SC.Iset.of_list els })
       sets)

let test_wc_exact () =
  let t = wc_instance ~universe:3 [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 1; 2 ] ] in
  match SC.Weighted_cover.solve_exact t with
  | Some s ->
    check_float "one set suffices" 1.0 s.SC.Weighted_cover.cost;
    Alcotest.(check (list int)) "the big set" [ 2 ] s.SC.Weighted_cover.chosen
  | None -> Alcotest.fail "coverable"

let test_wc_weighted () =
  let sets =
    [
      { SC.Weighted_cover.label = "big"; elements = SC.Iset.of_list [ 0; 1; 2 ] };
      { SC.Weighted_cover.label = "l"; elements = SC.Iset.of_list [ 0; 1 ] };
      { SC.Weighted_cover.label = "r"; elements = SC.Iset.of_list [ 2 ] };
    ]
  in
  let t = SC.Weighted_cover.make ~universe:3 ~weights:[| 5.0; 1.0; 1.0 |] sets in
  match SC.Weighted_cover.solve_exact t with
  | Some s -> check_float "two cheap sets beat the big one" 2.0 s.SC.Weighted_cover.cost
  | None -> Alcotest.fail "coverable"

let test_wc_uncoverable () =
  let t = wc_instance ~universe:3 [ [ 0; 1 ] ] in
  Alcotest.(check bool) "exact none" true (SC.Weighted_cover.solve_exact t = None);
  Alcotest.(check bool) "greedy none" true (SC.Weighted_cover.solve_greedy t = None)

let prop_wc_greedy_sound =
  qcheck ~count:80 "weighted cover: greedy feasible and >= exact"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let rng = rng seed in
      let universe = 1 + Random.State.int rng 8 in
      let num_sets = 1 + Random.State.int rng 8 in
      let sets =
        List.init num_sets (fun i ->
            { SC.Weighted_cover.label = Printf.sprintf "S%d" i;
              elements =
                SC.Iset.of_list
                  (List.filter (fun _ -> Random.State.bool rng) (List.init universe Fun.id)) })
      in
      let weights = Array.init num_sets (fun _ -> 1.0 +. Random.State.float rng 4.0) in
      let t = SC.Weighted_cover.make ~universe ~weights sets in
      match SC.Weighted_cover.solve_exact t, SC.Weighted_cover.solve_greedy t with
      | None, None -> true
      | Some e, Some g ->
        SC.Weighted_cover.is_feasible t g.SC.Weighted_cover.chosen
        && g.SC.Weighted_cover.cost +. 1e-9 >= e.SC.Weighted_cover.cost
      | _ -> false)

(* ---- source side-effect ---- *)

let forest_prov seed =
  let rng = rng seed in
  let { Workload.Forest_family.problem; _ } =
    Workload.Forest_family.generate ~rng
      { Workload.Forest_family.default with num_relations = 4; tuples_per_relation = 6 }
  in
  D.Provenance.build problem

let test_source_vs_view_objectives () =
  (* Fig. 1 / Q4: source optimum deletes 1 tuple either way; the journal
     deletion is just as source-cheap though view-costlier *)
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  match D.Source_side_effect.solve_exact prov with
  | Some r ->
    check_float "one source tuple" 1.0 r.D.Source_side_effect.source_cost;
    Alcotest.(check bool) "feasible" true r.D.Source_side_effect.outcome.D.Side_effect.feasible
  | None -> Alcotest.fail "expected solution"

let prop_source_exact_leq_greedy =
  qcheck ~count:60 "source side-effect: greedy >= exact, both feasible"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let prov = forest_prov seed in
      match
        D.Source_side_effect.solve_exact prov, D.Source_side_effect.solve_greedy prov
      with
      | Some e, Some g ->
        e.D.Source_side_effect.outcome.D.Side_effect.feasible
        && g.D.Source_side_effect.outcome.D.Side_effect.feasible
        && g.D.Source_side_effect.source_cost +. 1e-9 >= e.D.Source_side_effect.source_cost
      | None, None -> true
      | _ -> false)

let test_source_single () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  match D.Source_side_effect.solve_single prov with
  | Ok r -> check_float "single deletion: one tuple" 1.0 r.D.Source_side_effect.source_cost
  | Error n -> Alcotest.failf "refused with %d deletions" n

let test_source_weighted () =
  (* weight T1 tuples heavily: the optimum flips to the T2 witness tuple *)
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  let weight (st : R.Stuple.t) = if st.rel = "T1" then 10.0 else 1.0 in
  match D.Source_side_effect.solve_exact ~tuple_weight:weight prov with
  | Some r ->
    check_float "picks T2" 1.0 r.D.Source_side_effect.source_cost;
    Alcotest.(check bool) "T2 tuple chosen" true
      (R.Stuple.Set.for_all (fun st -> st.R.Stuple.rel = "T2") r.D.Source_side_effect.deletion)
  | None -> Alcotest.fail "expected solution"

(* ---- resilience ---- *)

let test_resilience_basic () =
  let db =
    R.Serial.instance_of_string
      "rel A(k*, v)\nA(1, x)\nA(2, x)\nrel B(k*, v)\nB(1, y)"
  in
  (* Q joins A and B on nothing shared: resilience = min(|A|,|B|) = 1 *)
  let q = parse "Q(K1, V1, K2, V2) :- A(K1, V1), B(K2, V2)" in
  let r = D.Resilience.solve_exact db q in
  Alcotest.(check int) "resilience 1 via B" 1 r.D.Resilience.resilience;
  let g = D.Resilience.solve_greedy db q in
  Alcotest.(check bool) "greedy >= exact" true
    (g.D.Resilience.resilience >= r.D.Resilience.resilience)

let test_resilience_empty_view () =
  let db = R.Serial.instance_of_string "rel A(k*)\nrel B(k*)\nB(1)" in
  let q = parse "Q(K) :- A(K)" in
  Alcotest.(check int) "empty view: resilience 0" 0
    (D.Resilience.solve_exact db q).D.Resilience.resilience

let prop_resilience_ground_truth_agrees =
  qcheck ~count:30 "resilience: witness-based = ground truth on key-preserving queries"
    QCheck2.Gen.(int_range 0 1_000)
    (fun seed ->
      let rng = rng seed in
      let p =
        Workload.Pivot_family.generate ~rng
          { Workload.Pivot_family.default with depth = 2; tuples_per_relation = 4;
            num_queries = 1 }
      in
      match p.D.Problem.queries with
      | [ q ] ->
        let db = p.D.Problem.db in
        (D.Resilience.solve_exact db q).D.Resilience.resilience
        = (D.Resilience.solve_ground_truth db q).D.Resilience.resilience
      | _ -> false)

(* ---- explanations ---- *)

let test_explain () =
  let prov = D.Provenance.build (Workload.Author_journal.scenario_q4 ()) in
  let deletion = R.Stuple.Set.singleton (st "T1" [ "John"; "TKDE" ]) in
  let e = D.Explain.explain prov deletion in
  (match e.D.Explain.coverage with
  | [ c ] ->
    Alcotest.(check int) "one killer" 1 (List.length c.D.Explain.killers);
    Alcotest.check stuple "the author tuple" (st "T1" [ "John"; "TKDE" ])
      (List.hd c.D.Explain.killers)
  | _ -> Alcotest.fail "one bad tuple expected");
  (match e.D.Explain.damage with
  | [ d ] ->
    Alcotest.check vtuple "CUBE lost"
      (D.Vtuple.make "Q4" (R.Tuple.strs [ "John"; "TKDE"; "CUBE" ]))
      d.D.Explain.lost
  | _ -> Alcotest.fail "one damage entry expected");
  (* infeasible deletions are reported, not hidden *)
  let e2 = D.Explain.explain prov R.Stuple.Set.empty in
  (match e2.D.Explain.coverage with
  | [ c ] -> Alcotest.(check int) "no killers" 0 (List.length c.D.Explain.killers)
  | _ -> Alcotest.fail "one bad tuple expected")

(* ---- cleaning workload ---- *)

let test_cleaning_scores () =
  let rng = rng 5 in
  let w = Workload.Cleaning.generate ~rng ~views_with_feedback:4 Workload.Cleaning.default in
  Alcotest.(check int) "two corruptions" 2 (R.Stuple.Set.cardinal w.Workload.Cleaning.corrupted);
  (* perfect repair scores (1, 1) *)
  let p, r = Workload.Cleaning.score w w.Workload.Cleaning.corrupted in
  check_float "precision" 1.0 p;
  check_float "recall" 1.0 r;
  (* empty repair: (1, 0) *)
  let p0, r0 = Workload.Cleaning.score w R.Stuple.Set.empty in
  check_float "empty precision" 1.0 p0;
  check_float "empty recall" 0.0 r0

let prop_cleaning_feedback_monotone =
  qcheck ~count:20 "cleaning: more views never hurt exact-repair recall"
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let repair views =
        let rng = rng seed in
        let w =
          Workload.Cleaning.generate ~rng ~views_with_feedback:views
            { Workload.Cleaning.default with tuples_per_relation = 4 }
        in
        let prov = D.Provenance.build w.Workload.Cleaning.problem in
        match D.Brute.solve prov with
        | Some r -> snd (Workload.Cleaning.score w r.D.Brute.deletion)
        | None -> 0.0
      in
      repair 4 +. 1e-9 >= repair 1)

(* ---- ablations behave ---- *)

let prop_ablation_reverse_delete =
  qcheck ~count:40 "ablation: disabling reverse-delete never improves cost"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let prov = forest_prov seed in
      let on = D.Primal_dual.solve prov in
      let off = D.Primal_dual.solve ~reverse_delete:false prov in
      off.D.Primal_dual.outcome.D.Side_effect.feasible
      && off.D.Primal_dual.outcome.D.Side_effect.cost +. 1e-9
         >= on.D.Primal_dual.outcome.D.Side_effect.cost)

let prop_ablation_prune_wide_feasible =
  qcheck ~count:40 "ablation: lowdeg without wide-pruning stays feasible"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let prov = forest_prov seed in
      (D.Lowdeg.solve ~prune_wide:false prov).D.Lowdeg.outcome.D.Side_effect.feasible)

let suite =
  [
    Alcotest.test_case "fd: closure / implication" `Quick test_fd_closure;
    Alcotest.test_case "fd: keys" `Quick test_fd_keys;
    Alcotest.test_case "fd: multiple candidate keys" `Quick test_fd_multiple_keys;
    Alcotest.test_case "fd: satisfaction on relations" `Quick test_fd_satisfaction;
    Alcotest.test_case "fd: minimal cover" `Quick test_fd_minimal_cover;
    Alcotest.test_case "fd: declared-key implication" `Quick test_fd_declared_key;
    Alcotest.test_case "triad: triangle" `Quick test_triad_triangle;
    Alcotest.test_case "triad: chain free" `Quick test_triad_chain;
    Alcotest.test_case "triad: star free" `Quick test_triad_star;
    Alcotest.test_case "triad: private links" `Quick test_triad_disjoint_links;
    Alcotest.test_case "head domination (paper Q3)" `Quick test_head_domination;
    Alcotest.test_case "existential components" `Quick test_existential_components;
    Alcotest.test_case "weighted cover: exact" `Quick test_wc_exact;
    Alcotest.test_case "weighted cover: weights matter" `Quick test_wc_weighted;
    Alcotest.test_case "weighted cover: uncoverable" `Quick test_wc_uncoverable;
    prop_wc_greedy_sound;
    Alcotest.test_case "source side-effect: Fig. 1" `Quick test_source_vs_view_objectives;
    prop_source_exact_leq_greedy;
    Alcotest.test_case "source side-effect: single deletion" `Quick test_source_single;
    Alcotest.test_case "source side-effect: tuple weights" `Quick test_source_weighted;
    Alcotest.test_case "resilience: cross product" `Quick test_resilience_basic;
    Alcotest.test_case "resilience: empty view" `Quick test_resilience_empty_view;
    prop_resilience_ground_truth_agrees;
    Alcotest.test_case "explain: coverage and damage" `Quick test_explain;
    Alcotest.test_case "cleaning: scoring" `Quick test_cleaning_scores;
    prop_cleaning_feedback_monotone;
    prop_ablation_reverse_delete;
    prop_ablation_prune_wide_feasible;
  ]

(* ---- FD-extended dichotomies ---- *)

let fd_schema =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"T1" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T2" ~attrs:[ "b"; "c"; "d" ] ~key:[ 0; 1 ];
    ]

let test_fd_closure_vars () =
  (* paper's Q3 with FD b -> c on T2: from {X, Y} the closure gains Z *)
  let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  let fds = [ ("T2", fd [ "b" ] [ "c" ]) ] in
  let closure =
    Cq.Structure.fd_closure fd_schema fds q3 (Cq.Term.Vars.of_list [ "Y" ])
  in
  Alcotest.(check bool) "Z determined by Y" true (Cq.Term.Vars.mem "Z" closure);
  Alcotest.(check bool) "W not determined" false (Cq.Term.Vars.mem "W" closure)

let test_fd_head_domination () =
  let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  (* without FDs: not head dominated (tested elsewhere); with the FD
     a -> b on T1, X determines Y, and Y determines Z with b -> c on T2:
     T1's variable set {X, Y} fd-closes over {X, Z} — T1 dominates *)
  let fds = [ ("T1", fd [ "a" ] [ "b" ]); ("T2", fd [ "b" ] [ "c" ]) ] in
  Alcotest.(check bool) "not dominated without FDs" false
    (Cq.Structure.has_fd_head_domination fd_schema [] q3);
  Alcotest.(check bool) "dominated with FDs" true
    (Cq.Structure.has_fd_head_domination fd_schema fds q3)

let test_fd_rewrite () =
  let q3 = parse "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)" in
  let fds = [ ("T1", fd [ "a" ] [ "b" ]) ] in
  let rewritten = Cq.Structure.fd_rewrite fd_schema fds q3 in
  (* Y is determined by the head var X, so it joins the head *)
  Alcotest.(check bool) "Y promoted to the head" true
    (Cq.Term.Vars.mem "Y" (Cq.Query.head_vars rewritten));
  Alcotest.(check int) "arity grows by one" 3 (Cq.Query.arity rewritten)

let test_fd_triads () =
  let tri_schema =
    R.Schema.Db.of_list
      [
        R.Schema.make ~name:"R" ~attrs:[ "x"; "y" ] ~key:[ 0; 1 ];
        R.Schema.make ~name:"S" ~attrs:[ "x"; "y" ] ~key:[ 0; 1 ];
        R.Schema.make ~name:"U" ~attrs:[ "x"; "y" ] ~key:[ 0; 1 ];
      ]
  in
  ignore tri_schema;
  let q = parse "Q(X, Y, Z) :- R(X, Y), S(Y, Z), U(Z, X)" in
  Alcotest.(check bool) "triangle has a triad" false
    (Cq.Structure.is_fd_triad_free tri_schema [] q);
  (* with x -> y on R, R's variables pin the whole triangle: every pair's
     connecting variable is in the closure of the third atom *)
  let fds = [ ("R", fd [ "x" ] [ "y" ]); ("S", fd [ "x" ] [ "y" ]); ("U", fd [ "x" ] [ "y" ]) ] in
  Alcotest.(check bool) "FDs dissolve the triad" true
    (Cq.Structure.is_fd_triad_free tri_schema fds q)

let test_problem_fd_validation () =
  let db = Workload.Author_journal.db () in
  (* Journal -> Topic is violated (TKDE has XML and CUBE) *)
  Alcotest.(check bool) "violated FD rejected" true
    (try
       ignore
         (D.Problem.make ~db ~queries:[ Workload.Author_journal.q4 ] ~deletions:[]
            ~fds:[ ("T2", fd [ "Journal" ] [ "Topic" ]) ]
            ());
       false
     with Invalid_argument _ -> true);
  (* Journal+Topic -> Papers holds *)
  ignore
    (D.Problem.make ~db ~queries:[ Workload.Author_journal.q4 ] ~deletions:[]
       ~fds:[ ("T2", fd [ "Journal"; "Topic" ] [ "Papers" ]) ]
       ());
  Alcotest.(check bool) "unknown relation rejected" true
    (try
       ignore
         (D.Problem.make ~db ~queries:[ Workload.Author_journal.q4 ] ~deletions:[]
            ~fds:[ ("Zed", fd [ "a" ] [ "b" ]) ]
            ());
       false
     with Invalid_argument _ -> true)

let suite =
  suite
  @ [
      Alcotest.test_case "fd-dichotomy: variable closure" `Quick test_fd_closure_vars;
      Alcotest.test_case "fd-dichotomy: fd-head domination" `Quick test_fd_head_domination;
      Alcotest.test_case "fd-dichotomy: rewrite promotes determined vars" `Quick
        test_fd_rewrite;
      Alcotest.test_case "fd-dichotomy: fd-induced triads" `Quick test_fd_triads;
      Alcotest.test_case "problem: FD validation" `Quick test_problem_fd_validation;
    ]
