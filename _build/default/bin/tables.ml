(* Minimal aligned-table printer for the experiment harness. *)

type cell = string

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e9 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.2f" x

let s x = x
let i x = string_of_int x
let f x = fmt_float x
let b x = if x then "yes" else "no"

(* when set, every printed table is also written as <dir>/<slug>.csv *)
let csv_dir : string option ref = ref None

let slug_of title =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') then
        Char.lowercase_ascii c
      else '_')
    (String.trim title)
  |> fun s -> if String.length s > 60 then String.sub s 0 60 else s

let write_csv ~title ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (slug_of title ^ ".csv") in
    let oc = open_out path in
    let quote c =
      if String.exists (fun ch -> ch = ',' || ch = '"') c then
        "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
      else c
    in
    let line row = String.concat "," (List.map quote row) in
    output_string oc (line header ^ "\n");
    List.iter (fun r -> output_string oc (line r ^ "\n")) rows;
    close_out oc

let print ~title ~header rows =
  write_csv ~title ~header rows;
  let all = header :: rows in
  let widths =
    List.fold_left
      (fun ws row ->
        List.mapi
          (fun i c ->
            let cur = try List.nth ws i with _ -> 0 in
            max cur (String.length c))
          row)
      (List.map (fun _ -> 0) header)
      all
  in
  let line row =
    String.concat "  "
      (List.mapi
         (fun i c ->
           let w = List.nth widths i in
           c ^ String.make (w - String.length c) ' ')
         row)
  in
  Printf.printf "\n== %s ==\n" title;
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun r -> print_endline (line r)) rows;
  print_newline ()
