bin/experiments.ml: Arg Cmd Cmdliner Cq Deleprop Float Fun Hypergraph List Option Printf Random Relational Result Setcover String Tables Term Unix Workload
