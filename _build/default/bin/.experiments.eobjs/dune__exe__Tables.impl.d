bin/tables.ml: Char Filename Float List Printf String Unix
