bin/experiments.mli:
