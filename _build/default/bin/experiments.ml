(* Experiment harness: regenerates every table/figure analog listed in
   EXPERIMENTS.md (E1-E15). Each experiment prints one or more tables;
   `experiments --exp all` prints everything (the default). *)

module R = Relational
module D = Deleprop
module SC = Setcover
module T = Tables

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let ratio approx opt = if opt <= 1e-12 then (if approx <= 1e-12 then 1.0 else infinity) else approx /. opt

let cost (o : D.Side_effect.outcome) = o.D.Side_effect.cost
let bcost (o : D.Side_effect.outcome) = o.D.Side_effect.balanced_cost

let rng seed = Random.State.make [| seed |]

(* ---------------- E1: Fig. 1 running example ---------------- *)

let e1 () =
  let p3 = Workload.Author_journal.scenario_q3 () in
  let view3 = D.Problem.view p3 "Q3" in
  T.print ~title:"E1a  Fig. 1(c): Q3(D)" ~header:[ "AuName"; "Topic" ]
    (List.map
       (fun t -> List.map R.Value.to_string (R.Tuple.to_list t))
       (R.Tuple.Set.elements view3));
  let opt3 = Option.get (D.Brute.solve_ground_truth p3) in
  T.print ~title:"E1b  ΔV = (John, XML) on Q3: optimal propagation"
    ~header:[ "solution"; "side-effect" ]
    [
      [ String.concat " + "
          (List.map R.Stuple.to_string (R.Stuple.Set.elements opt3.D.Brute.deletion));
        T.f (cost opt3.D.Brute.outcome) ];
    ];
  let p4 = Workload.Author_journal.scenario_q4 () in
  let prov4 = D.Provenance.build p4 in
  let witness =
    D.Provenance.witness_of prov4
      (D.Vtuple.make "Q4" (R.Tuple.strs [ "John"; "TKDE"; "XML" ]))
  in
  let rows =
    List.map
      (fun st ->
        let o = D.Side_effect.eval prov4 (R.Stuple.Set.singleton st) in
        [ R.Stuple.to_string st; T.f (cost o); T.b o.D.Side_effect.feasible ])
      (R.Stuple.Set.elements witness)
  in
  T.print ~title:"E1c  ΔV = (John, TKDE, XML) on Q4: the key-preserving witness choices"
    ~header:[ "delete"; "side-effect"; "feasible" ] rows;
  let pm = Workload.Author_journal.scenario_multi () in
  let optm = Option.get (D.Brute.solve_ground_truth pm) in
  T.print ~title:"E1d  multi-query scenario (both deletions at once)"
    ~header:[ "solution"; "side-effect" ]
    [
      [ String.concat " + "
          (List.map R.Stuple.to_string (R.Stuple.Set.elements optm.D.Brute.deletion));
        T.f (cost optm.D.Brute.outcome) ];
    ]

(* ---------------- E2: Thm 1 hard family ---------------- *)

let e2 () =
  let rows =
    List.map
      (fun size ->
        let rg = rng (1000 + size) in
        let spec =
          { Workload.Hard_family.default with num_red = size; num_blue = size;
            num_sets = size + 2 }
        in
        let h, rb = Workload.Hard_family.generate ~rng:rg spec in
        let prov = D.Provenance.build h.D.Hardness.problem in
        let opt_vse = Option.get (D.Brute.solve prov) in
        let opt_rbsc = Option.get (SC.Red_blue.solve_exact rb) in
        let ga = Option.get (D.General_approx.solve prov) in
        let ov = cost opt_vse.D.Brute.outcome in
        [
          T.i size;
          T.i (D.Problem.view_size h.D.Hardness.problem);
          T.f ov;
          T.f opt_rbsc.SC.Red_blue.cost;
          T.b (Float.abs (ov -. opt_rbsc.SC.Red_blue.cost) < 1e-9);
          T.f (cost ga.D.General_approx.outcome);
          T.f (ratio (cost ga.D.General_approx.outcome) ov);
        ])
      [ 4; 6; 8; 10; 12 ]
  in
  T.print
    ~title:"E2  Thm 1 reduction: RBSC -> 2+ project-free queries (cost preservation, approx gap)"
    ~header:[ "elements"; "||V||"; "opt(VSE)"; "opt(RBSC)"; "equal"; "approx"; "ratio" ]
    rows

(* ---------------- E3: Claim 1 general-case bound ---------------- *)

let e3 () =
  let rows =
    List.map
      (fun (nq, dims) ->
        let rg = rng (2000 + (nq * 10) + dims) in
        let spec =
          { Workload.Random_family.default with num_queries = nq; dims_per_query = dims;
            fact_tuples = 10; dim_tuples = 5 }
        in
        let p = Workload.Random_family.generate ~rng:rg spec in
        let prov = D.Provenance.build p in
        let opt = Option.get (D.Brute.solve prov) in
        let ga = Option.get (D.General_approx.solve prov) in
        let oc = cost opt.D.Brute.outcome in
        [
          T.i nq;
          T.i (D.Problem.max_arity p);
          T.i (D.Problem.view_size p);
          T.i (D.Problem.deletion_size p);
          T.f oc;
          T.f (cost ga.D.General_approx.outcome);
          T.f (ratio (cost ga.D.General_approx.outcome) oc);
          T.f ga.D.General_approx.claimed_bound;
        ])
      [ (2, 1); (2, 2); (3, 2); (4, 2); (4, 3); (5, 3) ]
  in
  T.print
    ~title:"E3  Claim 1: general-case approximation vs the 2·sqrt(l·||V||·log||ΔV||) bound"
    ~header:[ "queries"; "l"; "||V||"; "||ΔV||"; "opt"; "approx"; "ratio"; "bound" ]
    rows

(* ---------------- E4: Thm 3 primal-dual l-approximation ---------------- *)

let e4 () =
  let rows =
    List.map
      (fun path_len ->
        let trials = 25 in
        let ratios =
          List.init trials (fun t ->
              let rg = rng (3000 + (path_len * 100) + t) in
              let spec =
                { Workload.Forest_family.default with max_path_len = path_len;
                  num_relations = max 3 (path_len + 1); tuples_per_relation = 6 }
              in
              let { Workload.Forest_family.problem = p; _ } =
                Workload.Forest_family.generate ~rng:rg spec
              in
              let prov = D.Provenance.build p in
              let opt = Option.get (D.Brute.solve prov) in
              let pd = D.Primal_dual.solve prov in
              (ratio (cost pd.D.Primal_dual.outcome) (cost opt.D.Brute.outcome),
               D.Problem.max_arity p))
        in
        let finite = List.filter (fun (r, _) -> Float.is_finite r) ratios in
        let avg = List.fold_left (fun a (r, _) -> a +. r) 0.0 finite /. float_of_int (List.length finite) in
        let worst = List.fold_left (fun a (r, _) -> max a r) 0.0 finite in
        let l = List.fold_left (fun a (_, l) -> max a l) 0 ratios in
        [ T.i path_len; T.i l; T.i trials; T.f avg; T.f worst; T.b (worst <= float_of_int l +. 1e-9) ])
      [ 1; 2; 3; 4 ]
  in
  T.print ~title:"E4  Thm 3: PrimeDualVSE ratio <= l on forest cases (25 trials per row)"
    ~header:[ "path-len"; "l"; "trials"; "avg-ratio"; "worst-ratio"; "within l" ]
    rows

(* ---------------- E5: Prop 1 primal-dual runtime ---------------- *)

let e5 () =
  let rows =
    List.map
      (fun scale ->
        let rg = rng (4000 + scale) in
        let spec =
          { Workload.Forest_family.default with num_relations = 5;
            tuples_per_relation = scale; num_queries = 6; max_path_len = 3;
            deletion_fraction = 0.15 }
        in
        let { Workload.Forest_family.problem = p; _ } =
          Workload.Forest_family.generate ~rng:rg spec
        in
        let prov = D.Provenance.build p in
        let _, ms = time (fun () -> D.Primal_dual.solve prov) in
        [
          T.i scale;
          T.i (D.Problem.view_size p);
          T.i (D.Problem.deletion_size p);
          T.f ms;
        ])
      [ 10; 20; 40; 80; 160 ]
  in
  T.print ~title:"E5  Prop 1: PrimeDualVSE runtime scaling (polynomial in ||V||, ||ΔV||)"
    ~header:[ "tuples/rel"; "||V||"; "||ΔV||"; "time-ms" ]
    rows

(* ---------------- E6: Thm 4 LowDeg vs primal-dual crossover ---------------- *)

let e6 () =
  let rows =
    List.concat_map
      (fun (label, path_len, tuples) ->
        let trials = 15 in
        let acc =
          List.init trials (fun t ->
              let rg = rng (5000 + (path_len * 97) + t) in
              let spec =
                { Workload.Forest_family.default with max_path_len = path_len;
                  num_relations = max 3 (path_len + 1); tuples_per_relation = tuples;
                  num_queries = 4 }
              in
              let { Workload.Forest_family.problem = p; _ } =
                Workload.Forest_family.generate ~rng:rg spec
              in
              let prov = D.Provenance.build p in
              let opt = Option.get (D.Brute.solve prov) in
              let pd = D.Primal_dual.solve prov in
              let ld = D.Lowdeg.solve prov in
              let oc = cost opt.D.Brute.outcome in
              ( ratio (cost pd.D.Primal_dual.outcome) oc,
                ratio (cost ld.D.Lowdeg.outcome) oc,
                D.Problem.max_arity p,
                D.Lowdeg.bound p ))
        in
        let finite = List.filter (fun (a, b, _, _) -> Float.is_finite a && Float.is_finite b) acc in
        let n = float_of_int (max 1 (List.length finite)) in
        let avg f = List.fold_left (fun s x -> s +. f x) 0.0 finite /. n in
        let l = List.fold_left (fun s (_, _, l, _) -> max s l) 0 acc in
        let tb = avg (fun (_, _, _, b) -> b) in
        [
          [
            T.s label; T.i l; T.f tb;
            T.f (avg (fun (a, _, _, _) -> a));
            T.f (avg (fun (_, b, _, _) -> b));
            T.s (if l <= int_of_float tb then "l (primal-dual)" else "2√||V|| (lowdeg)");
          ];
        ])
      [ ("narrow (l small)", 1, 8); ("medium", 3, 8); ("wide (l large)", 8, 3) ]
  in
  T.print
    ~title:"E6  Thm 4: 2·sqrt(||V||) LowDeg vs l-approx — the crossover in the guarantees"
    ~header:[ "regime"; "l"; "2√||V||"; "avg-ratio PD"; "avg-ratio LowDeg"; "better bound" ]
    rows

(* ---------------- E7: Alg 4 DP exactness + scaling ---------------- *)

let e7 () =
  let rows =
    List.map
      (fun scale ->
        let rg = rng (6000 + scale) in
        let spec =
          { Workload.Pivot_family.default with depth = 4; tuples_per_relation = scale;
            num_queries = 4 }
        in
        let p = Workload.Pivot_family.generate ~rng:rg spec in
        let prov = D.Provenance.build p in
        let dp, dp_ms = time (fun () -> D.Dp_tree.solve prov) in
        let dp = Result.get_ok dp in
        let brute_cell, match_cell, brute_ms_cell =
          if scale <= 12 then begin
            let opt, ms = time (fun () -> Option.get (D.Brute.solve prov)) in
            ( T.f (cost opt.D.Brute.outcome),
              T.b (Float.abs (cost opt.D.Brute.outcome -. cost dp.D.Dp_tree.outcome) < 1e-9),
              T.f ms )
          end
          else (T.s "-", T.s "-", T.s "-")
        in
        [
          T.i scale;
          T.i (D.Problem.view_size p);
          T.f (cost dp.D.Dp_tree.outcome);
          T.f dp_ms;
          brute_cell;
          brute_ms_cell;
          match_cell;
        ])
      [ 4; 8; 12; 50; 200 ]
  in
  T.print
    ~title:"E7  Alg 4: DPTreeVSE exact on pivot forests; polynomial scaling vs brute force"
    ~header:[ "tuples/rel"; "||V||"; "dp-cost"; "dp-ms"; "brute-cost"; "brute-ms"; "match" ]
    rows

(* ---------------- E8: balanced (Thm 2 + Lemma 1) ---------------- *)

let e8 () =
  let rows =
    List.map
      (fun size ->
        let rg = rng (7000 + size) in
        let spec =
          { Workload.Hard_family.default with num_red = size; num_blue = size;
            num_sets = size + 2 }
        in
        let h, pn = Workload.Hard_family.generate_balanced ~rng:rg spec in
        let prov = D.Provenance.build h.D.Hardness.problem in
        let exact = D.Balanced.solve_exact prov in
        let pn_opt = SC.Pos_neg.solve_exact pn in
        let approx = D.Balanced.solve_general prov in
        let tree = D.Balanced.solve_tree prov in
        let ex = bcost exact.D.Balanced.outcome in
        [
          T.i size;
          T.f ex;
          T.f pn_opt.SC.Pos_neg.cost;
          T.b (Float.abs (ex -. pn_opt.SC.Pos_neg.cost) < 1e-9);
          T.f (bcost approx.D.Balanced.outcome);
          T.f (bcost tree.D.Balanced.outcome);
          T.f (ratio (bcost approx.D.Balanced.outcome) ex);
          T.f (D.Balanced.bound h.D.Hardness.problem);
        ])
      [ 4; 6; 8; 10 ]
  in
  T.print
    ~title:"E8  Thm 2 + Lemma 1: balanced deletion propagation = PNPSC; approximation vs bound"
    ~header:[ "elements"; "opt(bal)"; "opt(PNPSC)"; "equal"; "approx"; "tree-pd"; "ratio"; "bound" ]
    rows

(* ---------------- E9: single-query PTime vs multi-query ---------------- *)

let e9 () =
  (* single-query, single-deletion: polynomial solver is exact *)
  let single_rows =
    List.map
      (fun scale ->
        let rg = rng (8000 + scale) in
        let spec =
          { Workload.Random_family.default with fact_tuples = scale; dim_tuples = scale / 2 }
        in
        let p = Workload.Random_family.generate_single ~rng:rg spec in
        let prov = D.Provenance.build p in
        let sq, ms = time (fun () -> D.Single_query.solve prov) in
        match sq, D.Brute.solve prov with
        | Ok sq, Some opt ->
          [
            T.i scale;
            T.f (cost sq.D.Single_query.outcome);
            T.f (cost opt.D.Brute.outcome);
            T.b (Float.abs (cost sq.D.Single_query.outcome -. cost opt.D.Brute.outcome) < 1e-9);
            T.f ms;
          ]
        | _ -> [ T.i scale; T.s "-"; T.s "-"; T.s "-"; T.s "-" ])
      [ 8; 16; 32; 64 ]
  in
  T.print
    ~title:"E9a  single query + single deletion (Cong et al. [15]): polynomial and exact"
    ~header:[ "fact-tuples"; "single-query"; "opt"; "exact"; "time-ms" ]
    single_rows;
  (* multi-query: the greedy extension loses; approximations take over *)
  let multi_rows =
    List.map
      (fun nq ->
        let trials = 20 in
        let acc =
          List.init trials (fun t ->
              let rg = rng (8500 + (nq * 31) + t) in
              let spec =
                { Workload.Random_family.default with num_queries = nq; fact_tuples = 10;
                  dim_tuples = 5 }
              in
              let p = Workload.Random_family.generate ~rng:rg spec in
              let prov = D.Provenance.build p in
              let opt = Option.get (D.Brute.solve prov) in
              let greedy = D.Single_query.solve_greedy_multi prov in
              let ga = Option.get (D.General_approx.solve prov) in
              let oc = cost opt.D.Brute.outcome in
              (ratio (cost greedy.D.Single_query.outcome) oc,
               ratio (cost ga.D.General_approx.outcome) oc))
        in
        let finite = List.filter (fun (a, b) -> Float.is_finite a && Float.is_finite b) acc in
        let n = float_of_int (max 1 (List.length finite)) in
        let avg f = List.fold_left (fun s x -> s +. f x) 0.0 finite /. n in
        [
          T.i nq;
          T.f (avg fst);
          T.f (avg snd);
          T.f (List.fold_left (fun s (a, _) -> max s a) 0.0 finite);
          T.f (List.fold_left (fun s (_, b) -> max s b) 0.0 finite);
        ])
      [ 1; 2; 3; 5 ]
  in
  T.print
    ~title:"E9b  multiple queries: per-tuple greedy vs the reduction-based approximation"
    ~header:[ "queries"; "avg greedy"; "avg approx"; "worst greedy"; "worst approx" ]
    multi_rows

(* ---------------- E10: Fig 3 hypergraph classification ---------------- *)

let e10 () =
  let mk edges = Hypergraph.Hgraph.make ~edges () in
  let q1 =
    mk [ ("Q1", [ "T1"; "T2"; "T3" ]); ("Q3", [ "T1"; "T2" ]); ("Q4", [ "T1"; "T3" ]);
         ("Q5", [ "T2"; "T3" ]) ]
  in
  let q2 = mk [ ("Q1", [ "T1"; "T2"; "T3" ]); ("Q3", [ "T1"; "T2" ]); ("Q5", [ "T2"; "T3" ]) ] in
  let q3 = mk [ ("Q1", [ "T1"; "T2"; "T3" ]); ("Q2", [ "T1"; "T2"; "T4" ]); ("Q5", [ "T2"; "T3" ]) ] in
  let rows =
    List.map
      (fun (name, g, expected) ->
        [
          T.s name;
          T.b (Hypergraph.Hgraph.is_acyclic g);
          T.b (Hypergraph.Hgraph.is_forest g);
          T.s expected;
        ])
      [
        ("Q1 = {Q1,Q3,Q4,Q5}", q1, "not a hypertree");
        ("Q2 = {Q1,Q3,Q5}", q2, "hypertree");
        ("Q3 = {Q1,Q2,Q5}", q3, "hypertree");
      ]
  in
  T.print ~title:"E10  Fig. 3: dual hypergraph classification"
    ~header:[ "query set"; "alpha-acyclic"; "hypertree (paper)"; "paper says" ]
    rows

(* ---------------- E11: LP lower bounds ---------------- *)

let e11 () =
  let rows =
    List.map
      (fun seed ->
        let rg = rng (9000 + seed) in
        let { Workload.Forest_family.problem = p; _ } =
          Workload.Forest_family.generate ~rng:rg
            { Workload.Forest_family.default with num_relations = 4; tuples_per_relation = 5 }
        in
        let prov = D.Provenance.build p in
        let lb = Option.value ~default:nan (D.Lp_formulation.lower_bound prov) in
        let opt = Option.get (D.Brute.solve prov) in
        let pd = D.Primal_dual.solve prov in
        let oc = cost opt.D.Brute.outcome in
        [
          T.i seed;
          T.f lb;
          T.f oc;
          T.f (cost pd.D.Primal_dual.outcome);
          T.f (if lb > 1e-12 then oc /. lb else 1.0);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  T.print
    ~title:"E11  LP relaxation (§IV.C): simplex lower bound vs integral optimum vs primal-dual"
    ~header:[ "instance"; "LP bound"; "opt"; "primal-dual"; "integrality gap" ]
    rows

(* ---------------- E12: source side-effect (Tables II-III) ---------------- *)

let e12 () =
  let rows =
    List.map
      (fun seed ->
        let rg = rng (10_000 + seed) in
        let { Workload.Forest_family.problem = p; _ } =
          Workload.Forest_family.generate ~rng:rg
            { Workload.Forest_family.default with num_relations = 4; tuples_per_relation = 6;
              num_queries = 4 }
        in
        let prov = D.Provenance.build p in
        let view_opt = Option.get (D.Brute.solve prov) in
        let src_exact = Option.get (D.Source_side_effect.solve_exact prov) in
        let src_greedy = Option.get (D.Source_side_effect.solve_greedy prov) in
        [
          T.i seed;
          T.i (D.Problem.deletion_size p);
          T.f src_exact.D.Source_side_effect.source_cost;
          T.f src_greedy.D.Source_side_effect.source_cost;
          T.f (cost src_exact.D.Source_side_effect.outcome);
          T.f (cost view_opt.D.Brute.outcome);
          T.f (R.Stuple.Set.cardinal view_opt.D.Brute.deletion |> float_of_int);
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  T.print
    ~title:
      "E12  source side-effect (Tables II-III): fewest deleted tuples vs the view objective"
    ~header:
      [ "instance"; "||ΔV||"; "src-opt"; "src-greedy"; "view-cost@src-opt"; "view-opt";
        "|ΔD|@view-opt" ]
    rows

(* ---------------- E13: Tables II-V query-class landscape ---------------- *)

let e13 () =
  let schema =
    R.Schema.Db.of_list
      [
        R.Schema.make ~name:"T1" ~attrs:[ "a"; "b" ] ~key:[ 0; 1 ];
        R.Schema.make ~name:"T2" ~attrs:[ "b"; "c"; "d" ] ~key:[ 0; 1 ];
        R.Schema.make ~name:"R" ~attrs:[ "x"; "y" ] ~key:[ 0; 1 ];
        R.Schema.make ~name:"S" ~attrs:[ "x"; "y" ] ~key:[ 0; 1 ];
        R.Schema.make ~name:"U" ~attrs:[ "x"; "y" ] ~key:[ 0; 1 ];
      ]
  in
  let gallery =
    [
      ("project-free join", "Q(X, Y, Z, W) :- T1(X, Y), T2(Y, Z, W)");
      ("paper Q4 (key-preserving)", "Q(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)");
      ("paper Q3 (projection on key)", "Q(X, Z) :- T1(X, Y), T2(Y, Z, W)");
      ("triangle", "Q(X, Y, Z) :- R(X, Y), S(Y, Z), U(Z, X)");
      ("chain", "Q(X, Z) :- R(X, Y), S(Y, Z)");
      ("self-join path", "Q(X, Y, Z) :- R(X, Y), R(Y, Z)");
    ]
  in
  (* FD context: the journal determines the topic *)
  let fds = [ ("T2", R.Fd.make ~lhs:[ "b" ] ~rhs:[ "c" ]) ] in
  let rows =
    List.map
      (fun (name, text) ->
        let q = Cq.Parser.query_of_string text in
        let prof = Cq.Classify.profile schema q in
        let sj = prof.Cq.Classify.self_join_free in
        [
          T.s name;
          T.b prof.Cq.Classify.project_free;
          T.b sj;
          T.b prof.Cq.Classify.key_preserving;
          (if sj then T.b (Cq.Structure.has_head_domination q) else T.s "n/a");
          (if sj then T.b (Cq.Structure.has_fd_head_domination schema fds q) else T.s "n/a");
          (if sj then T.b (Cq.Structure.is_triad_free q) else T.s "n/a");
          T.s
            (if prof.Cq.Classify.key_preserving then "PTime (Cong et al.)"
             else if sj && Cq.Structure.has_head_domination q then "PTime (Kimelfeld)"
             else if sj && Cq.Structure.has_fd_head_domination schema fds q then
               "PTime w/ FDs (Kimelfeld 2012)"
             else if sj then "NP-hard (no head-dom)"
             else "open/hard (self-join)");
        ])
      gallery
  in
  T.print
    ~title:
      "E13  Tables II-V landscape: query classes and the implied single-query complexity \
       (FD context: T2.b -> T2.c)"
    ~header:
      [ "query"; "proj-free"; "sj-free"; "key-pres"; "head-dom"; "fd-head-dom"; "triad-free";
        "view side-effect" ]
    rows

(* ---------------- E14: cleaning accuracy vs number of views ---------------- *)

let e14 () =
  let spec = { Workload.Cleaning.default with depth = 4; tuples_per_relation = 5 } in
  let trials = 15 in
  let rows =
    List.map
      (fun views ->
        let acc =
          List.init trials (fun t ->
              let rg = rng (11_000 + (views * 131) + t) in
              let w = Workload.Cleaning.generate ~rng:rg ~views_with_feedback:views spec in
              let prov = D.Provenance.build w.Workload.Cleaning.problem in
              match D.Brute.solve prov with
              | Some r ->
                let p, rc = Workload.Cleaning.score w r.D.Brute.deletion in
                (p, rc, cost r.D.Brute.outcome)
              | None -> (1.0, 0.0, 0.0))
        in
        let n = float_of_int trials in
        let avg f = List.fold_left (fun s x -> s +. f x) 0.0 acc /. n in
        [
          T.i views;
          T.f (avg (fun (p, _, _) -> p));
          T.f (avg (fun (_, r, _) -> r));
          T.f (avg (fun (_, _, c) -> c));
        ])
      [ 1; 2; 3; 4 ]
  in
  T.print
    ~title:
      "E14  §V cleaning accuracy: repair precision/recall vs number of views giving feedback"
    ~header:[ "views"; "avg precision"; "avg recall"; "avg side-effect" ]
    rows

(* ---------------- E15: ablations ---------------- *)

let e15 () =
  let trials = 20 in
  let acc =
    List.init trials (fun t ->
        let rg = rng (12_000 + t) in
        let { Workload.Forest_family.problem = p; _ } =
          Workload.Forest_family.generate ~rng:rg
            { Workload.Forest_family.default with num_relations = 4; tuples_per_relation = 8;
              num_queries = 5; deletion_fraction = 0.25 }
        in
        let prov = D.Provenance.build p in
        let opt = cost (Option.get (D.Brute.solve prov)).D.Brute.outcome in
        let pd = cost (D.Primal_dual.solve prov).D.Primal_dual.outcome in
        let pd_nord =
          cost (D.Primal_dual.solve ~reverse_delete:false prov).D.Primal_dual.outcome
        in
        let ld = cost (D.Lowdeg.solve prov).D.Lowdeg.outcome in
        let ld_nopr = cost (D.Lowdeg.solve ~prune_wide:false prov).D.Lowdeg.outcome in
        (ratio pd opt, ratio pd_nord opt, ratio ld opt, ratio ld_nopr opt))
  in
  let finite = List.filter (fun (a, b, c, d) -> List.for_all Float.is_finite [ a; b; c; d ]) acc in
  let n = float_of_int (max 1 (List.length finite)) in
  let avg f = List.fold_left (fun s x -> s +. f x) 0.0 finite /. n in
  let worst f = List.fold_left (fun s x -> max s (f x)) 0.0 finite in
  T.print ~title:"E15  ablations: reverse-delete (Alg. 1) and wide-pruning (Alg. 2)"
    ~header:[ "variant"; "avg ratio"; "worst ratio" ]
    [
      [ T.s "primal-dual (full)"; T.f (avg (fun (a, _, _, _) -> a)); T.f (worst (fun (a, _, _, _) -> a)) ];
      [ T.s "primal-dual, no reverse-delete"; T.f (avg (fun (_, b, _, _) -> b)); T.f (worst (fun (_, b, _, _) -> b)) ];
      [ T.s "lowdeg (full)"; T.f (avg (fun (_, _, c, _) -> c)); T.f (worst (fun (_, _, c, _) -> c)) ];
      [ T.s "lowdeg, no wide-pruning"; T.f (avg (fun (_, _, _, d) -> d)); T.f (worst (fun (_, _, _, d) -> d)) ];
    ]

(* ---------------- E16: bounded deletion frontier (Miao et al. [36]) ---------------- *)

let e16 () =
  let rg = rng 16_000 in
  let { Workload.Forest_family.problem = p; _ } =
    Workload.Forest_family.generate ~rng:rg
      { Workload.Forest_family.default with num_relations = 4; tuples_per_relation = 8;
        num_queries = 5; deletion_fraction = 0.3 }
  in
  let prov = D.Provenance.build p in
  let rows =
    D.Bounded.frontier ~slack:4 prov
    |> List.map (fun (k, (r : D.Bounded.result)) ->
           [
             T.i k;
             T.f (cost r.D.Bounded.outcome);
             T.i (R.Stuple.Set.cardinal r.D.Bounded.deletion);
           ])
  in
  let min_k = match D.Bounded.min_budget prov with Some k -> k | None -> -1 in
  T.print
    ~title:
      (Printf.sprintf
         "E16  bounded deletion (Table V context): side-effect vs budget k (min feasible k = %d)"
         min_k)
    ~header:[ "budget k"; "best side-effect"; "|dD| used" ]
    rows

(* ---------------- E17: incremental view maintenance ---------------- *)

let e17 () =
  let rows =
    List.map
      (fun scale ->
        let rg = rng (17_000 + scale) in
        let { Workload.Forest_family.problem = p; _ } =
          Workload.Forest_family.generate ~rng:rg
            { Workload.Forest_family.default with num_relations = 4;
              tuples_per_relation = scale; num_queries = 4; deletion_fraction = 0.0 }
        in
        let db = p.D.Problem.db in
        let dd =
          match R.Instance.stuples db with
          | a :: b :: _ -> R.Stuple.Set.of_list [ a; b ]
          | l -> R.Stuple.Set.of_list l
        in
        let views =
          List.map (fun (q : Cq.Query.t) -> (q, Cq.Eval.evaluate db q)) p.D.Problem.queries
        in
        let _, full_ms =
          time (fun () ->
              List.map
                (fun (q, _) -> Cq.Eval.evaluate (R.Instance.delete db dd) q)
                views)
        in
        let incr_views, incr_ms =
          time (fun () -> List.map (fun (q, view) -> Cq.Maintain.refresh db q ~view dd) views)
        in
        let correct =
          List.for_all2
            (fun (q, _) v ->
              R.Tuple.Set.equal v (Cq.Eval.evaluate (R.Instance.delete db dd) q))
            views incr_views
        in
        [
          T.i scale;
          T.i (D.Problem.view_size p);
          T.f full_ms;
          T.f incr_ms;
          T.f (full_ms /. max 1e-6 incr_ms);
          T.b correct;
        ])
      [ 20; 50; 100; 200 ]
  in
  T.print
    ~title:"E17  incremental view maintenance: delta refresh vs full re-evaluation (|dD| = 2)"
    ~header:[ "tuples/rel"; "||V||"; "full-ms"; "incr-ms"; "speedup"; "correct" ]
    rows

(* ---------------- E18: join planning ---------------- *)

let e18 () =
  let rows =
    List.map
      (fun (dims, fact, dim) ->
        let rg = rng (18_000 + dims) in
        let p =
          Workload.Random_family.generate ~rng:rg
            { Workload.Random_family.default with num_dimensions = dims;
              dims_per_query = dims; fact_tuples = fact; dim_tuples = dim; num_queries = 1 }
        in
        match p.D.Problem.queries with
        | [ q ] ->
          let adversarial = { q with Cq.Query.body = List.rev q.Cq.Query.body } in
          let _, naive_ms =
            time (fun () -> Cq.Eval.evaluate ~planned:false p.D.Problem.db adversarial)
          in
          let _, planned_ms =
            time (fun () -> Cq.Eval.evaluate ~planned:true p.D.Problem.db adversarial)
          in
          [
            T.i dims;
            T.i fact;
            T.i dim;
            T.f naive_ms;
            T.f planned_ms;
            T.f (naive_ms /. max 1e-6 planned_ms);
          ]
        | _ -> assert false)
      [ (2, 30, 10); (3, 30, 10); (3, 60, 12) ]
  in
  T.print
    ~title:
      "E18  join planning: adversarial atom order, naive left-to-right vs planned evaluation"
    ~header:[ "dims"; "fact-tuples"; "dim-tuples"; "naive-ms"; "planned-ms"; "speedup" ]
    rows

(* ---------------- E19: QOCO-style oracle loop, batch-size sweep ---------------- *)

let e19 () =
  let trials = 10 in
  let rows =
    List.map
      (fun batch ->
        let acc =
          List.init trials (fun t ->
              let rg = rng (19_000 + (batch * 37) + t) in
              Workload.Oracle_loop.run ~rng:rg
                {
                  Workload.Oracle_loop.cleaning =
                    { Workload.Cleaning.depth = 4; tuples_per_relation = 5;
                      num_corruptions = 3 };
                  batch_size = batch;
                  max_questions = 2000;
                })
        in
        let n = float_of_int trials in
        let avg f = List.fold_left (fun s o -> s +. f o) 0.0 acc /. n in
        [
          T.i batch;
          T.f (avg (fun o -> float_of_int o.Workload.Oracle_loop.questions));
          T.f (avg (fun o -> float_of_int o.Workload.Oracle_loop.repair_rounds));
          T.f (avg (fun o -> o.Workload.Oracle_loop.precision));
          T.f (avg (fun o -> o.Workload.Oracle_loop.recall));
          T.f (avg (fun o -> float_of_int o.Workload.Oracle_loop.residual_wrong));
        ])
      [ 1; 3; 5; 10 ]
  in
  T.print
    ~title:
      "E19  §V oracle cleaning loop: batch size vs interactions, rounds and accuracy"
    ~header:[ "batch"; "avg questions"; "avg rounds"; "precision"; "recall"; "residual" ]
    rows

(* ---------------- E20: data skew (Zipf) sweep ---------------- *)

let e20 () =
  let trials = 12 in
  let rows =
    List.map
      (fun skew ->
        let acc =
          List.init trials (fun t ->
              let rg = rng (20_000 + (int_of_float (skew *. 10.0) * 53) + t) in
              let p =
                Workload.Random_family.generate ~rng:rg
                  { Workload.Random_family.default with skew; fact_tuples = 12;
                    dim_tuples = 6; num_queries = 3 }
              in
              let prov = D.Provenance.build p in
              let stats = D.Stats.compute prov in
              match D.Brute.solve prov, D.General_approx.solve prov with
              | Some opt, Some ga ->
                Some
                  ( stats.D.Stats.preserved_degree_max,
                    cost opt.D.Brute.outcome,
                    ratio (cost ga.D.General_approx.outcome) (cost opt.D.Brute.outcome) )
              | _ -> None)
          |> List.filter_map Fun.id
        in
        let n = float_of_int (max 1 (List.length acc)) in
        let avg f = List.fold_left (fun s x -> s +. f x) 0.0 acc /. n in
        [
          T.f skew;
          T.f (avg (fun (d, _, _) -> float_of_int d));
          T.f (avg (fun (_, o, _) -> o));
          T.f (avg (fun (_, _, r) -> if Float.is_finite r then r else 1.0));
        ])
      [ 0.0; 0.8; 1.2; 1.6 ]
  in
  T.print
    ~title:
      "E20  data skew (Zipf exponent): hot tuples raise preserved degree and repair damage"
    ~header:[ "skew s"; "avg max degree"; "avg opt cost"; "avg approx ratio" ]
    rows

(* ---------------- E21: end-to-end scaling on the bibliographic domain ---------------- *)

let e21 () =
  let rows =
    List.map
      (fun (authors, journals) ->
        let rg = rng (21_000 + authors) in
        let spec =
          { Workload.Bibliography.default with num_authors = authors;
            num_journals = journals }
        in
        let p, gen_ms = time (fun () -> Workload.Bibliography.generate ~rng:rg spec) in
        let prov, prov_ms = time (fun () -> D.Provenance.build p) in
        let pd, pd_ms = time (fun () -> D.Primal_dual.solve prov) in
        let _, ld_ms = time (fun () -> D.Lowdeg.solve prov) in
        let _, ga_ms = time (fun () -> D.General_approx.solve prov) in
        [
          T.i authors;
          T.i (R.Instance.size p.D.Problem.db);
          T.i (D.Problem.view_size p);
          T.i (D.Problem.deletion_size p);
          T.f gen_ms;
          T.f prov_ms;
          T.f pd_ms;
          T.f ld_ms;
          T.f ga_ms;
          T.f (cost pd.D.Primal_dual.outcome);
        ])
      [ (50, 12); (200, 25); (800, 50) ]
  in
  T.print
    ~title:
      "E21  end-to-end scaling, bibliographic domain (Zipf-hot venues): per-stage wall time"
    ~header:
      [ "authors"; "|D|"; "||V||"; "||dV||"; "gen-ms"; "prov-ms"; "pd-ms"; "lowdeg-ms";
        "general-ms"; "pd-cost" ]
    rows

(* ---------------- driver ---------------- *)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11); ("e12", e12);
    ("e13", e13); ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17); ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21);
  ]

let run which =
  match which with
  | "all" ->
    List.iter (fun (_, f) -> f ()) experiments;
    `Ok ()
  | name -> (
    match List.assoc_opt name experiments with
    | Some f ->
      f ();
      `Ok ()
    | None -> `Error (false, "unknown experiment " ^ name ^ " (e1..e21 or all)"))

let () =
  let open Cmdliner in
  let exp =
    Arg.(value & opt string "all" & info [ "e"; "exp" ] ~docv:"EXP" ~doc:"Experiment id (e1..e21) or 'all'.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR"
           ~doc:"Also write every table as a CSV file under $(docv).")
  in
  let run_with csv exp =
    Tables.csv_dir := csv;
    run exp
  in
  let cmd =
    Cmd.v
      (Cmd.info "experiments" ~doc:"Reproduce the paper's tables and figures (see EXPERIMENTS.md)")
      Term.(ret (const run_with $ csv $ exp))
  in
  exit (Cmd.eval cmd)
