type spec = {
  num_red : int;
  num_blue : int;
  num_sets : int;
  red_density : float;
  blue_density : float;
}

let default =
  { num_red = 6; num_blue = 6; num_sets = 8; red_density = 0.3; blue_density = 0.35 }

let generate ~rng spec =
  let rb =
    Rbsc_gen.red_blue ~rng ~num_red:spec.num_red ~num_blue:spec.num_blue
      ~num_sets:spec.num_sets ~red_density:spec.red_density ~blue_density:spec.blue_density
  in
  match Deleprop.Hardness.of_red_blue rb with
  | Ok h -> (h, rb)
  | Error m -> invalid_arg ("Hard_family.generate: " ^ m)

let generate_balanced ~rng spec =
  let pn =
    Rbsc_gen.pos_neg ~rng ~num_pos:spec.num_blue ~num_neg:spec.num_red
      ~num_sets:spec.num_sets ~pos_density:spec.blue_density ~neg_density:spec.red_density
  in
  match Deleprop.Hardness.of_pos_neg pn with
  | Ok h -> (h, pn)
  | Error m -> invalid_arg ("Hard_family.generate_balanced: " ^ m)
