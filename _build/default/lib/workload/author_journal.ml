module R = Relational

let schema () =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"T1" ~attrs:[ "AuName"; "Journal" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"T2" ~attrs:[ "Journal"; "Topic"; "Papers" ] ~key:[ 0; 1 ];
    ]

let db () =
  R.Instance.of_alist (schema ())
    [
      ( "T1",
        [
          R.Tuple.strs [ "Joe"; "TKDE" ];
          R.Tuple.strs [ "John"; "TKDE" ];
          R.Tuple.strs [ "Tom"; "TKDE" ];
          R.Tuple.strs [ "John"; "TODS" ];
        ] );
      ( "T2",
        [
          R.Tuple.of_list [ R.Value.str "TKDE"; R.Value.str "XML"; R.Value.int 30 ];
          R.Tuple.of_list [ R.Value.str "TKDE"; R.Value.str "CUBE"; R.Value.int 30 ];
          R.Tuple.of_list [ R.Value.str "TODS"; R.Value.str "XML"; R.Value.int 30 ];
        ] );
    ]

let q3 =
  Cq.Parser.query_of_string "Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)"

let q4 =
  Cq.Parser.query_of_string "Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)"

let scenario_q3 () =
  Deleprop.Problem.make ~db:(db ()) ~queries:[ q3 ]
    ~deletions:[ ("Q3", [ R.Tuple.strs [ "John"; "XML" ] ]) ]
    ~allow_non_key_preserving:true ()

let scenario_q4 () =
  Deleprop.Problem.make ~db:(db ()) ~queries:[ q4 ]
    ~deletions:[ ("Q4", [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ]) ]
    ()

let scenario_multi () =
  Deleprop.Problem.make ~db:(db ()) ~queries:[ q3; q4 ]
    ~deletions:
      [
        ("Q3", [ R.Tuple.strs [ "John"; "XML" ] ]);
        ("Q4", [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ]);
      ]
    ~allow_non_key_preserving:true ()
