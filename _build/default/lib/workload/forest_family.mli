(** Forest-case workloads: a random tree of relations linked child→parent
    by key, with queries that are upward join paths. The dual hypergraph
    of such a query set consists of ancestor chains, so every component
    is a hypertree — the regime of Algorithms 1–3 (experiments E4–E6). *)

type spec = {
  num_relations : int;      (** ≥ 1; relation 0 is the root *)
  tuples_per_relation : int;
  num_queries : int;
  max_path_len : int;       (** max atoms per query (≥ 1) *)
  project_free : bool;      (** when false, attribute variables stay
                                existential (still key preserving) *)
  deletion_fraction : float;(** fraction of each view sent to ΔV *)
}

val default : spec

type t = {
  problem : Deleprop.Problem.t;
  parent : int array;       (** parent.(i) = parent relation of i (root: -1) *)
}

val generate : rng:Random.State.t -> spec -> t
