let pick_members rng n density =
  List.init n Fun.id
  |> List.filter (fun _ -> Random.State.float rng 1.0 < density)
  |> Setcover.Iset.of_list

(* ensure every element of [0..n) appears in some set by patching column
   [get]/[put] of a random set *)
let force_coverage rng n num_sets get put =
  for e = 0 to n - 1 do
    let covered = ref false in
    for j = 0 to num_sets - 1 do
      if Setcover.Iset.mem e (get j) then covered := true
    done;
    if not !covered then begin
      let j = Random.State.int rng num_sets in
      put j (Setcover.Iset.add e (get j))
    end
  done

let red_blue ~rng ~num_red ~num_blue ~num_sets ~red_density ~blue_density =
  let reds = Array.init num_sets (fun _ -> pick_members rng num_red red_density) in
  let blues = Array.init num_sets (fun _ -> pick_members rng num_blue blue_density) in
  force_coverage rng num_blue num_sets (Array.get blues) (Array.set blues);
  let sets =
    List.init num_sets (fun j ->
        { Setcover.Red_blue.label = Printf.sprintf "C%d" j; red = reds.(j); blue = blues.(j) })
  in
  Setcover.Red_blue.make_unit ~num_red ~num_blue sets

let pos_neg ~rng ~num_pos ~num_neg ~num_sets ~pos_density ~neg_density =
  let negs = Array.init num_sets (fun _ -> pick_members rng num_neg neg_density) in
  let poss = Array.init num_sets (fun _ -> pick_members rng num_pos pos_density) in
  force_coverage rng num_pos num_sets (Array.get poss) (Array.set poss);
  let sets =
    List.init num_sets (fun j ->
        { Setcover.Pos_neg.label = Printf.sprintf "C%d" j; pos = poss.(j); neg = negs.(j) })
  in
  Setcover.Pos_neg.make_unit ~num_pos ~num_neg sets
