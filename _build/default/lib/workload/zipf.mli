(** Zipf-distributed sampling for skewed workloads. Real dirty data is
    skewed — a few hot journals, many cold ones — and skew is what
    separates the solvers: a hot shared tuple has a huge preserved
    degree, exactly the regime LowDeg's τ-filter targets. *)

type t

(** [make ~n ~s] — distribution over [0 .. n-1] with exponent [s ≥ 0]
    ([s = 0] is uniform; [s = 1] classic Zipf). *)
val make : n:int -> s:float -> t

val sample : t -> Random.State.t -> int

(** Probability mass of rank [i]. *)
val pmf : t -> int -> float
