type t = {
  n : int;
  cdf : float array;   (* cumulative, cdf.(n-1) = 1.0 *)
  pmf : float array;
}

let make ~n ~s =
  if n <= 0 then invalid_arg "Zipf.make: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.make: s must be non-negative";
  let raw = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let pmf = Array.map (fun x -> x /. total) raw in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(n - 1) <- 1.0;
  { n; cdf; pmf }

let sample t rng =
  let u = Random.State.float rng 1.0 in
  (* binary search for the first cdf entry >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.pmf: out of range";
  t.pmf.(i)
