(** General-case workloads (experiments E3, E9): a star schema — fact
    table [F] plus dimensions [D1..Dm] — with key-preserving queries that
    join [F] with a random subset of dimensions. Overlapping dimension
    subsets make the dual hypergraph non-forest in general, which is
    exactly the regime where only the Claim-1 reduction applies. *)

type spec = {
  num_dimensions : int;
  fact_tuples : int;
  dim_tuples : int;        (** per dimension *)
  num_queries : int;
  dims_per_query : int;    (** dimensions joined per query (≥ 0) *)
  project_free : bool;
  deletion_fraction : float;
  skew : float;            (** Zipf exponent for fact->dimension references;
                               0 = uniform. Skew concentrates preserved
                               degree on hot dimension tuples. *)
}

val default : spec

val generate : rng:Random.State.t -> spec -> Deleprop.Problem.t

(** Single-query, single-deletion instance — the Cong-et-al. polynomial
    case for experiment E9. Uses a cross-product query
    [Q(K0,A0,K1,A1) :- D0(K0,A0), D1(K1,A1)] over two relations of sizes
    [fact_tuples] and [dim_tuples], so that every source tuple is shared
    by many view tuples and the optimum is the non-trivial
    [min(|D0|,|D1|) - 1]. *)
val generate_single : rng:Random.State.t -> spec -> Deleprop.Problem.t
