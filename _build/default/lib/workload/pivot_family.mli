(** Pivot-forest workloads (the regime of Algorithm 4, experiment E7):
    a chain of relations [R0 ← R1 ← ... ← R_{d-1}], data forming trees of
    tuples rooted in [R0], and every query a {e full} ancestor path
    [R_j, R_{j-1}, ..., R0] — so each witness is a root path and each
    [R0] tuple is the pivot of its component. *)

type spec = {
  depth : int;              (** number of relations in the chain, ≥ 1 *)
  num_roots : int;          (** tuples in R0 = number of components *)
  tuples_per_relation : int;(** per non-root relation *)
  num_queries : int;        (** queries; each picks a random depth j ≥ 1 *)
  deletion_fraction : float;
}

val default : spec

val generate : rng:Random.State.t -> spec -> Deleprop.Problem.t
