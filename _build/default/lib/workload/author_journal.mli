(** The paper's running example (Fig. 1): authors, journals, topics.

    {v
    T1(AuName, Journal)           T2(Journal, Topic, #Papers)
    Joe  TKDE                     TKDE XML  30
    John TKDE                     TKDE CUBE 30
    Tom  TKDE                     TODS XML  30
    John TODS
    Q3(x, z)    :- T1(x, y), T2(y, z, w)      -- not key preserving
    Q4(x, y, z) :- T1(x, y), T2(y, z, w)      -- key preserving
    v}

    Keys: [T1(AuName, Journal)] both attributes; [T2(Journal, Topic)]. *)

val db : unit -> Relational.Instance.t

val q3 : Cq.Query.t
val q4 : Cq.Query.t

(** Scenario 1 (§II.C): delete [(John, XML)] from [Q3(D)]; two optimal
    solutions exist, each with view side-effect exactly 1. [Q3] is not
    key preserving, so only ground-truth solvers apply. *)
val scenario_q3 : unit -> Deleprop.Problem.t

(** Scenario 2: delete [(John, TKDE, XML)] from [Q4(D)] — the
    key-preserving case; either witness tuple works. *)
val scenario_q4 : unit -> Deleprop.Problem.t

(** Both views materialized, deletions on both ([ΔV] = scenario 1 ∪
    scenario 2) — the multi-query setting of the paper, under general
    semantics. *)
val scenario_multi : unit -> Deleprop.Problem.t
