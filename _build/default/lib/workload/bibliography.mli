(** A realistic bibliographic workload at scale — the paper's own domain
    (Fig. 1) grown to thousands of tuples: authors publish in journals
    (Zipf-hot: a few venues absorb most papers), journals carry topics,
    and the three Fig. 1-style views are materialized over it. Drives the
    end-to-end scaling experiment E21. *)

type spec = {
  num_authors : int;
  num_journals : int;
  num_topics : int;
  papers_per_author : int;    (** author-journal facts per author (max) *)
  topics_per_journal : int;
  journal_skew : float;       (** Zipf exponent for venue popularity *)
  deletion_fraction : float;  (** of the author-topic view *)
}

val default : spec

(** The problem: relations [Author (key: name, journal)] and
    [Journal (key: journal, topic)], with the key-preserving views
    [Qat] (author–journal–topic, Fig. 1's Q4), [Qaj] (author–journal
    pairs) and [Qjt] (journal–topic pairs), and random deletions on
    [Qat]. *)
val generate : rng:Random.State.t -> spec -> Deleprop.Problem.t
