module R = Relational

type spec = {
  num_relations : int;
  tuples_per_relation : int;
  num_queries : int;
  max_path_len : int;
  project_free : bool;
  deletion_fraction : float;
}

let default =
  {
    num_relations = 5;
    tuples_per_relation = 8;
    num_queries = 4;
    max_path_len = 3;
    project_free = true;
    deletion_fraction = 0.2;
  }

type t = {
  problem : Deleprop.Problem.t;
  parent : int array;
}

let rel_name i = Printf.sprintf "R%d" i

let schema_of spec =
  let rel i =
    if i = 0 then R.Schema.make ~name:(rel_name 0) ~attrs:[ "k"; "a" ] ~key:[ 0 ]
    else R.Schema.make ~name:(rel_name i) ~attrs:[ "k"; "a"; "pk" ] ~key:[ 0 ]
  in
  R.Schema.Db.of_list (List.init spec.num_relations rel)

let generate ~rng spec =
  if spec.num_relations < 1 then invalid_arg "Forest_family: num_relations >= 1";
  let parent =
    Array.init spec.num_relations (fun i ->
        if i = 0 then -1 else Random.State.int rng i)
  in
  let n = spec.tuples_per_relation in
  let db = ref (R.Instance.empty (schema_of spec)) in
  for i = 0 to spec.num_relations - 1 do
    for k = 0 to n - 1 do
      let attr = R.Value.int (Random.State.int rng 5) in
      let tuple =
        if i = 0 then R.Tuple.of_list [ R.Value.int k; attr ]
        else
          R.Tuple.of_list [ R.Value.int k; attr; R.Value.int (Random.State.int rng n) ]
      in
      db := R.Instance.add !db (rel_name i) tuple
    done
  done;
  let db = !db in
  (* a query: upward path from a random relation, up to max_path_len atoms *)
  let make_query qi =
    let start = Random.State.int rng spec.num_relations in
    let len = 1 + Random.State.int rng spec.max_path_len in
    let path =
      let rec climb acc r remaining =
        if remaining = 0 || r < 0 then List.rev acc
        else climb (r :: acc) parent.(r) (remaining - 1)
      in
      climb [] start len
    in
    let atoms, head =
      List.fold_left
        (fun (atoms, head) (pos, r) ->
          let kvar = Cq.Term.var (Printf.sprintf "K%d" pos) in
          let avar = Cq.Term.var (Printf.sprintf "A%d" pos) in
          let pkvar = Cq.Term.var (Printf.sprintf "K%d" (pos + 1)) in
          let atom =
            if r = 0 then Cq.Atom.make (rel_name 0) [ kvar; avar ]
            else Cq.Atom.make (rel_name r) [ kvar; avar; pkvar ]
          in
          let head = if spec.project_free then avar :: kvar :: head else kvar :: head in
          (atom :: atoms, head))
        ([], [])
        (List.mapi (fun pos r -> (pos, r)) path)
    in
    (* the last atom's pk variable (if any) must reach the head to keep the
       query safe AND project-free-compatible; it is not a key variable of
       the last atom's own relation, so key preservation never needs it,
       but safety does when project_free = false. Include it always. *)
    let last_r = List.nth path (List.length path - 1) in
    let head =
      if last_r = 0 then head
      else Cq.Term.var (Printf.sprintf "K%d" (List.length path)) :: head
    in
    Cq.Query.make ~name:(Printf.sprintf "Q%d" qi) ~head:(List.rev head)
      ~body:(List.rev atoms)
  in
  let queries = List.init spec.num_queries make_query in
  let deletions =
    List.map
      (fun (q : Cq.Query.t) ->
        let view = R.Tuple.Set.elements (Cq.Eval.evaluate db q) in
        let chosen =
          List.filter (fun _ -> Random.State.float rng 1.0 < spec.deletion_fraction) view
        in
        (q.name, chosen))
      queries
  in
  let problem = Deleprop.Problem.make ~db ~queries ~deletions () in
  { problem; parent }
