module R = Relational

type spec = {
  depth : int;
  num_roots : int;
  tuples_per_relation : int;
  num_queries : int;
  deletion_fraction : float;
}

let default =
  {
    depth = 4;
    num_roots = 2;
    tuples_per_relation = 10;
    num_queries = 3;
    deletion_fraction = 0.25;
  }

let rel_name i = Printf.sprintf "R%d" i

let schema_of spec =
  let rel i =
    if i = 0 then R.Schema.make ~name:(rel_name 0) ~attrs:[ "k"; "a" ] ~key:[ 0 ]
    else R.Schema.make ~name:(rel_name i) ~attrs:[ "k"; "a"; "pk" ] ~key:[ 0 ]
  in
  R.Schema.Db.of_list (List.init spec.depth rel)

let generate ~rng spec =
  if spec.depth < 1 then invalid_arg "Pivot_family: depth >= 1";
  let db = ref (R.Instance.empty (schema_of spec)) in
  let count i = if i = 0 then spec.num_roots else spec.tuples_per_relation in
  for i = 0 to spec.depth - 1 do
    for k = 0 to count i - 1 do
      let attr = R.Value.int (Random.State.int rng 5) in
      let tuple =
        if i = 0 then R.Tuple.of_list [ R.Value.int k; attr ]
        else
          R.Tuple.of_list
            [ R.Value.int k; attr; R.Value.int (Random.State.int rng (count (i - 1))) ]
      in
      db := R.Instance.add !db (rel_name i) tuple
    done
  done;
  let db = !db in
  (* full ancestor-path query from depth j down to R0 *)
  let make_query qi =
    let j = if spec.depth = 1 then 0 else 1 + Random.State.int rng (spec.depth - 1) in
    let atoms =
      List.init (j + 1) (fun idx ->
          let r = j - idx in
          let kvar = Cq.Term.var (Printf.sprintf "K%d" r) in
          let avar = Cq.Term.var (Printf.sprintf "A%d" r) in
          if r = 0 then Cq.Atom.make (rel_name 0) [ kvar; avar ]
          else Cq.Atom.make (rel_name r) [ kvar; avar; Cq.Term.var (Printf.sprintf "K%d" (r - 1)) ])
    in
    let head =
      List.concat_map
        (fun r -> [ Cq.Term.var (Printf.sprintf "K%d" r); Cq.Term.var (Printf.sprintf "A%d" r) ])
        (List.init (j + 1) (fun idx -> j - idx))
    in
    Cq.Query.make ~name:(Printf.sprintf "Q%d" qi) ~head ~body:atoms
  in
  let queries = List.init spec.num_queries make_query in
  let deletions =
    List.map
      (fun (q : Cq.Query.t) ->
        let view = R.Tuple.Set.elements (Cq.Eval.evaluate db q) in
        let chosen =
          List.filter (fun _ -> Random.State.float rng 1.0 < spec.deletion_fraction) view
        in
        (q.name, chosen))
      queries
  in
  Deleprop.Problem.make ~db ~queries ~deletions ()
