module R = Relational

type spec = {
  depth : int;
  tuples_per_relation : int;
  num_corruptions : int;
}

let default = { depth = 4; tuples_per_relation = 6; num_corruptions = 2 }

type t = {
  problem : Deleprop.Problem.t;
  corrupted : R.Stuple.Set.t;
  clean : R.Instance.t;
  total_views : int;
}

let rel_name i = Printf.sprintf "R%d" i

let schema_of spec =
  let rel i =
    if i = 0 then R.Schema.make ~name:(rel_name 0) ~attrs:[ "k"; "a" ] ~key:[ 0 ]
    else R.Schema.make ~name:(rel_name i) ~attrs:[ "k"; "a"; "pk" ] ~key:[ 0 ]
  in
  R.Schema.Db.of_list (List.init spec.depth rel)

(* full upward path query from depth j to the root, payloads included *)
let query_at j =
  let atoms =
    List.init (j + 1) (fun idx ->
        let r = j - idx in
        let kvar = Cq.Term.var (Printf.sprintf "K%d" r) in
        let avar = Cq.Term.var (Printf.sprintf "A%d" r) in
        if r = 0 then Cq.Atom.make (rel_name 0) [ kvar; avar ]
        else
          Cq.Atom.make (rel_name r)
            [ kvar; avar; Cq.Term.var (Printf.sprintf "K%d" (r - 1)) ])
  in
  let head =
    List.concat_map
      (fun idx ->
        let r = j - idx in
        [ Cq.Term.var (Printf.sprintf "K%d" r); Cq.Term.var (Printf.sprintf "A%d" r) ])
      (List.init (j + 1) Fun.id)
  in
  Cq.Query.make ~name:(Printf.sprintf "V%d" j) ~head ~body:atoms

let generate ~rng ~views_with_feedback spec =
  if spec.depth < 1 then invalid_arg "Cleaning: depth >= 1";
  let schema = schema_of spec in
  let n = spec.tuples_per_relation in
  (* clean database *)
  let clean = ref (R.Instance.empty schema) in
  for i = 0 to spec.depth - 1 do
    for k = 0 to n - 1 do
      let attr = R.Value.int (100 + Random.State.int rng 50) in
      let tuple =
        if i = 0 then R.Tuple.of_list [ R.Value.int k; attr ]
        else R.Tuple.of_list [ R.Value.int k; attr; R.Value.int (Random.State.int rng n) ]
      in
      clean := R.Instance.add !clean (rel_name i) tuple
    done
  done;
  let clean = !clean in
  (* corrupt payloads of random tuples (keys and links untouched) *)
  let all = Array.of_list (R.Instance.stuples clean) in
  let dirty = ref clean in
  let corrupted = ref R.Stuple.Set.empty in
  let attempts = ref 0 in
  while R.Stuple.Set.cardinal !corrupted < spec.num_corruptions && !attempts < 100 do
    incr attempts;
    let st = all.(Random.State.int rng (Array.length all)) in
    if
      not
        (R.Stuple.Set.exists
           (fun c -> c.R.Stuple.rel = st.R.Stuple.rel
                     && R.Value.equal (R.Tuple.get c.R.Stuple.tuple 0) (R.Tuple.get st.R.Stuple.tuple 0))
           !corrupted)
    then begin
      let cells = R.Tuple.to_array st.R.Stuple.tuple in
      cells.(1) <- R.Value.int 999;  (* the corruption marker value *)
      let bad_tuple = R.Tuple.make cells in
      dirty := R.Instance.add (R.Instance.remove !dirty st) st.R.Stuple.rel bad_tuple;
      corrupted := R.Stuple.Set.add (R.Stuple.make st.R.Stuple.rel bad_tuple) !corrupted
    end
  done;
  let dirty = !dirty in
  let queries = List.init spec.depth query_at in
  let m = max 1 (min views_with_feedback spec.depth) in
  (* feedback: dirty answers that are not clean answers, from the first m views *)
  let deletions =
    List.filteri (fun i _ -> i < m) queries
    |> List.map (fun (q : Cq.Query.t) ->
           let dirty_view = Cq.Eval.evaluate dirty q in
           let clean_view = Cq.Eval.evaluate clean q in
           (q.name, R.Tuple.Set.elements (R.Tuple.Set.diff dirty_view clean_view)))
  in
  let problem = Deleprop.Problem.make ~db:dirty ~queries ~deletions () in
  { problem; corrupted = !corrupted; clean; total_views = spec.depth }

let score t repair =
  let inter = R.Stuple.Set.inter repair t.corrupted in
  let precision =
    if R.Stuple.Set.is_empty repair then 1.0
    else float_of_int (R.Stuple.Set.cardinal inter) /. float_of_int (R.Stuple.Set.cardinal repair)
  in
  let recall =
    if R.Stuple.Set.is_empty t.corrupted then 1.0
    else
      float_of_int (R.Stuple.Set.cardinal inter)
      /. float_of_int (R.Stuple.Set.cardinal t.corrupted)
  in
  (precision, recall)
