(** Hard instances: random Red-Blue Set Cover fed through the Theorem 1
    reduction (and PNPSC through Theorem 2's) — the families on which the
    problem is provably hard to approximate (experiments E2, E8). *)

type spec = {
  num_red : int;
  num_blue : int;
  num_sets : int;
  red_density : float;
  blue_density : float;
}

val default : spec

(** The reduced deletion-propagation instance together with the source
    RBSC instance (never fails: generated instances are coverable). *)
val generate : rng:Random.State.t -> spec -> Deleprop.Hardness.t * Setcover.Red_blue.t

(** Balanced counterpart via PNPSC and Theorem 2. *)
val generate_balanced :
  rng:Random.State.t -> spec -> Deleprop.Hardness.t * Setcover.Pos_neg.t
