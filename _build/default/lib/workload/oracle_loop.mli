(** A QOCO-style interactive cleaning session (§V): a domain expert
    ("oracle") answers membership questions about view tuples — is this
    answer correct? — and the system repairs the dirty database by
    deletion propagation. The paper's critique of one-at-a-time
    processing vs its batch guarantee becomes measurable here: sweep the
    batch size and count oracle questions, repair rounds, and accuracy.

    Loop, per round:
    + pick up to [batch_size] unverified dirty-view answers (scan order),
    + ask the oracle about each (correct = present in the clean view),
    + propagate the batch of wrong answers with the exact solver,
    + apply the repair on a {!Deleprop.Matview} manager (views refresh
      incrementally), and continue until no unverified answers remain or
      [max_questions] is exhausted. *)

type spec = {
  cleaning : Cleaning.spec;
  batch_size : int;      (** 1 = QOCO-style sequential; larger = batched *)
  max_questions : int;
}

val default : spec

type outcome = {
  questions : int;        (** oracle interactions used *)
  repair_rounds : int;    (** solver invocations *)
  deleted : Relational.Stuple.Set.t;
  precision : float;      (** of [deleted] against the seeded corruptions *)
  recall : float;
  residual_wrong : int;   (** dirty answers still visible at the end *)
}

val run : rng:Random.State.t -> spec -> outcome
