(** Query-oriented cleaning workloads (§V): a clean database is corrupted
    in a few tuples; analyst views surface the corruption as wrong
    answers; feedback (= the answers that differ from the clean views) is
    collected from a prefix of the views. Experiment E14 measures how
    repair accuracy grows with the number of views giving feedback — the
    paper's "the more queries and views, the closer we approach the
    side-effect free solution".

    Structure: a chain of relations linked child→parent by key, with one
    full upward path query per relation depth, so that a corrupted tuple
    at depth [d] shows up in every view whose path crosses depth [d]. *)

type spec = {
  depth : int;               (** relations in the chain *)
  tuples_per_relation : int;
  num_corruptions : int;     (** tuples whose payload gets corrupted *)
}

val default : spec

type t = {
  problem : Deleprop.Problem.t;
      (** the dirty database with feedback from the first
          [views_with_feedback] views as ΔV *)
  corrupted : Relational.Stuple.Set.t;   (** ground truth: the dirty tuples *)
  clean : Relational.Instance.t;         (** the uncorrupted database *)
  total_views : int;
}

(** [generate ~rng ~views_with_feedback spec] — [views_with_feedback] is
    clamped to [1..depth]. *)
val generate : rng:Random.State.t -> views_with_feedback:int -> spec -> t

(** Precision/recall of a repair against the ground truth. An empty
    repair scores precision 1, recall 0. *)
val score : t -> Relational.Stuple.Set.t -> float * float
