lib/workload/forest_family.ml: Array Cq Deleprop List Printf Random Relational
