lib/workload/random_family.ml: Array Cq Deleprop Fun List Printf Random Relational Zipf
