lib/workload/hard_family.ml: Deleprop Rbsc_gen
