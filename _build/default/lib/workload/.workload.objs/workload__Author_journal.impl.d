lib/workload/author_journal.ml: Cq Deleprop Relational
