lib/workload/forest_family.mli: Deleprop Random
