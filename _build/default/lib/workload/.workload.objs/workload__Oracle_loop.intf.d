lib/workload/oracle_loop.mli: Cleaning Random Relational
