lib/workload/rbsc_gen.mli: Random Setcover
