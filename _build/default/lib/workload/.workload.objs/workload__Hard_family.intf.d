lib/workload/hard_family.mli: Deleprop Random Setcover
