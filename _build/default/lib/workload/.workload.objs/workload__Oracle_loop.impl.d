lib/workload/oracle_loop.ml: Cleaning Cq Deleprop Hashtbl List Option Relational
