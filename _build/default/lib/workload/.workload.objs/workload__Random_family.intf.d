lib/workload/random_family.mli: Deleprop Random
