lib/workload/rbsc_gen.ml: Array Fun List Printf Random Setcover
