lib/workload/pivot_family.ml: Cq Deleprop List Printf Random Relational
