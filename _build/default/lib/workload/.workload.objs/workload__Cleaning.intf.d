lib/workload/cleaning.mli: Deleprop Random Relational
