lib/workload/author_journal.mli: Cq Deleprop Relational
