lib/workload/bibliography.mli: Deleprop Random
