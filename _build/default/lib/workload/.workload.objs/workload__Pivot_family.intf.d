lib/workload/pivot_family.mli: Deleprop Random
