lib/workload/cleaning.ml: Array Cq Deleprop Fun List Printf Random Relational
