lib/workload/bibliography.ml: Cq Deleprop Hashtbl List Printf Random Relational Zipf
