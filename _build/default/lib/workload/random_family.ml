module R = Relational

type spec = {
  num_dimensions : int;
  fact_tuples : int;
  dim_tuples : int;
  num_queries : int;
  dims_per_query : int;
  project_free : bool;
  deletion_fraction : float;
  skew : float;
}

let default =
  {
    num_dimensions = 4;
    fact_tuples = 12;
    dim_tuples = 6;
    num_queries = 4;
    dims_per_query = 2;
    project_free = false;
    deletion_fraction = 0.2;
    skew = 0.0;
  }

let dim_name i = Printf.sprintf "D%d" i

let schema_of spec =
  let fact =
    R.Schema.make ~name:"F"
      ~attrs:("k" :: List.init spec.num_dimensions (Printf.sprintf "d%d"))
      ~key:[ 0 ]
  in
  let dim i = R.Schema.make ~name:(dim_name i) ~attrs:[ "k"; "a"; "b" ] ~key:[ 0 ] in
  R.Schema.Db.of_list (fact :: List.init spec.num_dimensions dim)

let generate_db ~rng spec =
  let db = ref (R.Instance.empty (schema_of spec)) in
  for i = 0 to spec.num_dimensions - 1 do
    for k = 0 to spec.dim_tuples - 1 do
      let t =
        R.Tuple.of_list
          [
            R.Value.int k;
            R.Value.int (Random.State.int rng 5);
            R.Value.int (Random.State.int rng 5);
          ]
      in
      db := R.Instance.add !db (dim_name i) t
    done
  done;
  let dim_pick =
    if spec.skew > 0.0 then
      let z = Zipf.make ~n:spec.dim_tuples ~s:spec.skew in
      fun () -> Zipf.sample z rng
    else fun () -> Random.State.int rng spec.dim_tuples
  in
  for k = 0 to spec.fact_tuples - 1 do
    let t =
      R.Tuple.of_list
        (R.Value.int k
        :: List.init spec.num_dimensions (fun _ -> R.Value.int (dim_pick ())))
    in
    db := R.Instance.add !db "F" t
  done;
  !db

(* choose [k] distinct dimensions *)
let choose_dims rng spec k =
  let all = Array.init spec.num_dimensions Fun.id in
  for i = spec.num_dimensions - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = all.(i) in
    all.(i) <- all.(j);
    all.(j) <- tmp
  done;
  Array.to_list (Array.sub all 0 (min k spec.num_dimensions))

let make_query ~rng spec qi =
  let dims = choose_dims rng spec spec.dims_per_query in
  let fact_args =
    Cq.Term.var "KF"
    :: List.init spec.num_dimensions (fun i ->
           if List.mem i dims then Cq.Term.var (Printf.sprintf "K%d" i)
           else Cq.Term.var (Printf.sprintf "W%d" i))
  in
  let dim_atoms =
    List.map
      (fun i ->
        Cq.Atom.make (dim_name i)
          [
            Cq.Term.var (Printf.sprintf "K%d" i);
            Cq.Term.var (Printf.sprintf "A%d" i);
            Cq.Term.var (Printf.sprintf "B%d" i);
          ])
      dims
  in
  let head =
    Cq.Term.var "KF"
    :: List.concat_map
         (fun i ->
           let base =
             [ Cq.Term.var (Printf.sprintf "K%d" i); Cq.Term.var (Printf.sprintf "A%d" i) ]
           in
           if spec.project_free then base @ [ Cq.Term.var (Printf.sprintf "B%d" i) ] else base)
         dims
  in
  let head =
    if spec.project_free then
      head
      @ List.filter_map
          (fun i ->
            if List.mem i dims then None else Some (Cq.Term.var (Printf.sprintf "W%d" i)))
          (List.init spec.num_dimensions Fun.id)
    else head
  in
  Cq.Query.make ~name:(Printf.sprintf "Q%d" qi) ~head
    ~body:(Cq.Atom.make "F" fact_args :: dim_atoms)

let random_deletions ~rng spec db queries =
  List.map
    (fun (q : Cq.Query.t) ->
      let view = R.Tuple.Set.elements (Cq.Eval.evaluate db q) in
      let chosen =
        List.filter (fun _ -> Random.State.float rng 1.0 < spec.deletion_fraction) view
      in
      (q.name, chosen))
    queries

let generate ~rng spec =
  let db = generate_db ~rng spec in
  let queries = List.init spec.num_queries (make_query ~rng spec) in
  let deletions = random_deletions ~rng spec db queries in
  Deleprop.Problem.make ~db ~queries ~deletions ()

let generate_single ~rng spec =
  let schema =
    R.Schema.Db.of_list
      [
        R.Schema.make ~name:"D0" ~attrs:[ "k"; "a" ] ~key:[ 0 ];
        R.Schema.make ~name:"D1" ~attrs:[ "k"; "a" ] ~key:[ 0 ];
      ]
  in
  let fill db name n =
    List.fold_left
      (fun db k ->
        R.Instance.add db name
          (R.Tuple.of_list [ R.Value.int k; R.Value.int (Random.State.int rng 5) ]))
      db (List.init n Fun.id)
  in
  let db = fill (fill (R.Instance.empty schema) "D0" spec.fact_tuples) "D1" spec.dim_tuples in
  let q = Cq.Parser.query_of_string "Q0(K0, A0, K1, A1) :- D0(K0, A0), D1(K1, A1)" in
  let view = R.Tuple.Set.elements (Cq.Eval.evaluate db q) in
  let deletions =
    match view with
    | [] -> []
    | _ -> [ (q.Cq.Query.name, [ List.nth view (Random.State.int rng (List.length view)) ]) ]
  in
  Deleprop.Problem.make ~db ~queries:[ q ] ~deletions ()
