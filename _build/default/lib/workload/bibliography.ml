module R = Relational

type spec = {
  num_authors : int;
  num_journals : int;
  num_topics : int;
  papers_per_author : int;
  topics_per_journal : int;
  journal_skew : float;
  deletion_fraction : float;
}

let default =
  {
    num_authors = 50;
    num_journals = 12;
    num_topics = 8;
    papers_per_author = 3;
    topics_per_journal = 2;
    journal_skew = 1.0;
    deletion_fraction = 0.05;
  }

let schema () =
  R.Schema.Db.of_list
    [
      R.Schema.make ~name:"Author" ~attrs:[ "name"; "journal" ] ~key:[ 0; 1 ];
      R.Schema.make ~name:"Journal" ~attrs:[ "journal"; "topic"; "papers" ] ~key:[ 0; 1 ];
    ]

let generate ~rng spec =
  let journal_dist = Zipf.make ~n:spec.num_journals ~s:spec.journal_skew in
  let db = ref (R.Instance.empty (schema ())) in
  let jname j = Printf.sprintf "j%d" j in
  (* journals carry topics *)
  for j = 0 to spec.num_journals - 1 do
    let seen = Hashtbl.create 4 in
    for _ = 1 to spec.topics_per_journal do
      let t = Random.State.int rng spec.num_topics in
      if not (Hashtbl.mem seen t) then begin
        Hashtbl.add seen t ();
        db :=
          R.Instance.add !db "Journal"
            (R.Tuple.of_list
               [
                 R.Value.str (jname j);
                 R.Value.str (Printf.sprintf "t%d" t);
                 R.Value.int (10 + Random.State.int rng 90);
               ])
      end
    done
  done;
  (* authors publish in Zipf-hot journals *)
  for a = 0 to spec.num_authors - 1 do
    let seen = Hashtbl.create 4 in
    for _ = 1 to spec.papers_per_author do
      let j = Zipf.sample journal_dist rng in
      if not (Hashtbl.mem seen j) then begin
        Hashtbl.add seen j ();
        db :=
          R.Instance.add !db "Author"
            (R.Tuple.of_list
               [ R.Value.str (Printf.sprintf "a%d" a); R.Value.str (jname j) ])
      end
    done
  done;
  let db = !db in
  let queries =
    Cq.Parser.queries_of_string
      {|
        Qat(A, J, T) :- Author(A, J), Journal(J, T, N)
        Qaj(A, J) :- Author(A, J)
        Qjt(J, T, N) :- Journal(J, T, N)
      |}
  in
  let qat = List.hd queries in
  let view = R.Tuple.Set.elements (Cq.Eval.evaluate db qat) in
  let deletions =
    List.filter (fun _ -> Random.State.float rng 1.0 < spec.deletion_fraction) view
  in
  Deleprop.Problem.make ~db ~queries ~deletions:[ ("Qat", deletions) ] ()
