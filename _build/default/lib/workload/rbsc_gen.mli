(** Random Red-Blue / Positive-Negative Set Cover instances — inputs to
    the hardness reductions (experiments E2, E8) and to the set-cover
    solver tests. *)

(** [red_blue ~rng ~num_red ~num_blue ~num_sets ~red_density ~blue_density]
    — each set receives each red (blue) element independently with the
    given probability; every blue element is then forced into at least
    one set (coverability). *)
val red_blue :
  rng:Random.State.t ->
  num_red:int ->
  num_blue:int ->
  num_sets:int ->
  red_density:float ->
  blue_density:float ->
  Setcover.Red_blue.t

(** Same shape for PNPSC; positives need not be coverable, but are (for
    comparability with the balanced reduction, which requires it). *)
val pos_neg :
  rng:Random.State.t ->
  num_pos:int ->
  num_neg:int ->
  num_sets:int ->
  pos_density:float ->
  neg_density:float ->
  Setcover.Pos_neg.t
