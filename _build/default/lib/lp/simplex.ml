type outcome =
  | Optimal of { x : float array; value : float; duals : float array }
  | Infeasible
  | Unbounded

let eps = 1e-9

(* Tableau state: rows.(i) has length [width + 1], last column = rhs.
   [basis.(i)] is the variable index basic in row i. *)
type tableau = {
  mutable rows : float array array;
  mutable basis : int array;
  width : int;
}

let pivot (t : tableau) ~row ~col =
  let p = t.rows.(row) in
  let coef = p.(col) in
  for j = 0 to t.width do
    p.(j) <- p.(j) /. coef
  done;
  Array.iteri
    (fun i r ->
      if i <> row && Float.abs r.(col) > 0.0 then begin
        let f = r.(col) in
        for j = 0 to t.width do
          r.(j) <- r.(j) -. (f *. p.(j))
        done
      end)
    t.rows;
  t.basis.(row) <- col

(* Minimize cost over the tableau with Bland's rule; [allowed j] gates
   entering columns. Returns (`Optimal | `Unbounded, final reduced-cost
   row). Mutates t. *)
let optimize ?(max_iters = 100_000) (t : tableau) cost allowed =
  let m = Array.length t.rows in
  (* reduced-cost row: z.(j) = cost.(j) - sum_i cost.(basis i) * rows.(i).(j);
     z.(width) accumulates -objective *)
  let z = Array.make (t.width + 1) 0.0 in
  Array.blit cost 0 z 0 t.width;
  for i = 0 to m - 1 do
    let cb = cost.(t.basis.(i)) in
    if Float.abs cb > 0.0 then
      for j = 0 to t.width do
        z.(j) <- z.(j) -. (cb *. t.rows.(i).(j))
      done
  done;
  let rec loop iters =
    if iters > max_iters then failwith "Simplex: iteration budget exceeded";
    (* entering column: Bland — smallest allowed j with z_j < -eps *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.width - 1 do
         if allowed j && z.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then (`Optimal, z)
    else begin
      let col = !entering in
      (* ratio test, Bland tie-break on basis variable index *)
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if a > eps then begin
          let ratio = t.rows.(i).(t.width) /. a in
          if
            ratio < !best_ratio -. eps
            || (Float.abs (ratio -. !best_ratio) <= eps
               && !best_row >= 0
               && t.basis.(i) < t.basis.(!best_row))
          then begin
            best_ratio := ratio;
            best_row := i
          end
        end
      done;
      if !best_row < 0 then (`Unbounded, z)
      else begin
        pivot t ~row:!best_row ~col;
        (* update z like a tableau row *)
        let f = z.(col) in
        if Float.abs f > 0.0 then begin
          let p = t.rows.(!best_row) in
          for j = 0 to t.width do
            z.(j) <- z.(j) -. (f *. p.(j))
          done
        end;
        loop (iters + 1)
      end
    end
  in
  loop 0

let solve ?(max_iters = 100_000) (p : Problem.t) =
  let n = Problem.num_vars p in
  let constraints = Array.of_list p.Problem.constraints in
  let m = Array.length constraints in
  (* normalize rhs >= 0, remembering which rows were flipped *)
  let flipped = Array.map (fun (c : Problem.cstr) -> c.rhs < 0.0) constraints in
  let norm =
    Array.map
      (fun (c : Problem.cstr) ->
        if c.rhs < 0.0 then
          {
            c with
            coeffs = Array.map (fun x -> -.x) c.coeffs;
            rhs = -.c.rhs;
            op = (match c.op with Problem.Ge -> Problem.Le | Le -> Ge | Eq -> Eq);
          }
        else c)
      constraints
  in
  (* column layout: originals, then one slack/surplus per Le/Ge row, then
     one artificial per Ge/Eq row *)
  let num_slack =
    Array.fold_left
      (fun acc (c : Problem.cstr) -> match c.op with Ge | Le -> acc + 1 | Eq -> acc)
      0 norm
  in
  let num_art =
    Array.fold_left
      (fun acc (c : Problem.cstr) -> match c.op with Ge | Eq -> acc + 1 | Le -> acc)
      0 norm
  in
  let width = n + num_slack + num_art in
  let art_start = n + num_slack in
  let rows = Array.make m [||] in
  let basis = Array.make m 0 in
  let own_col = Array.make m 0 in
  let next_slack = ref n in
  let next_art = ref art_start in
  Array.iteri
    (fun i (c : Problem.cstr) ->
      let row = Array.make (width + 1) 0.0 in
      Array.blit c.coeffs 0 row 0 n;
      row.(width) <- c.rhs;
      (match c.op with
      | Le ->
        row.(!next_slack) <- 1.0;
        basis.(i) <- !next_slack;
        own_col.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        row.(!next_slack) <- -1.0;
        incr next_slack;
        row.(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        own_col.(i) <- !next_art;
        incr next_art
      | Eq ->
        row.(!next_art) <- 1.0;
        basis.(i) <- !next_art;
        own_col.(i) <- !next_art;
        incr next_art);
      rows.(i) <- row)
    norm;
  let t = { rows; basis; width } in
  (* Phase 1: minimize the artificials *)
  let phase1_cost = Array.make width 0.0 in
  for j = art_start to width - 1 do
    phase1_cost.(j) <- 1.0
  done;
  (match optimize ~max_iters t phase1_cost (fun _ -> true) with
  | `Unbounded, _ -> assert false (* phase-1 objective is bounded below by 0 *)
  | `Optimal, _ -> ());
  let art_value =
    Array.to_list (Array.mapi (fun i b -> (i, b)) t.basis)
    |> List.fold_left
         (fun acc (i, b) -> if b >= art_start then acc +. t.rows.(i).(width) else acc)
         0.0
  in
  if art_value > 1e-6 then Infeasible
  else begin
    (* drive remaining artificials out of the basis *)
    Array.iteri
      (fun i b ->
        if b >= art_start then begin
          let found = ref false in
          let j = ref 0 in
          while (not !found) && !j < art_start do
            if Float.abs t.rows.(i).(!j) > 1e-7 then begin
              pivot t ~row:i ~col:!j;
              found := true
            end;
            incr j
          done
          (* if no pivot found the row is redundant; leaving the artificial
             basic at value 0 is harmless since it can't re-enter *)
        end)
      t.basis;
    (* Phase 2 *)
    let sign = match p.Problem.direction with Problem.Minimize -> 1.0 | Maximize -> -1.0 in
    let phase2_cost = Array.make width 0.0 in
    for j = 0 to n - 1 do
      phase2_cost.(j) <- sign *. p.Problem.objective.(j)
    done;
    match optimize ~max_iters t phase2_cost (fun j -> j < art_start) with
    | `Unbounded, _ -> Unbounded
    | `Optimal, z ->
      let x = Array.make n 0.0 in
      Array.iteri
        (fun i b -> if b < n then x.(b) <- t.rows.(i).(width))
        t.basis;
      (* duals: each row owns one +1 column (its slack, or artificial for
         Ge/Eq rows); the row's multiplier for the minimization form is
         the negated reduced cost of that column, sign-flipped back for
         rows normalized by rhs < 0 and for Maximize problems *)
      let duals =
        Array.mapi
          (fun i _ ->
            let y_norm = -.z.(own_col.(i)) in
            let y = if flipped.(i) then -.y_norm else y_norm in
            sign *. y)
          norm
      in
      Optimal { x; value = Problem.value p x; duals }
  end

let pp_outcome ppf = function
  | Optimal { x; value; _ } ->
    Format.fprintf ppf "optimal %g at (%a)" value
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf -> Format.fprintf ppf "%g"))
      (Array.to_list x)
  | Infeasible -> Format.fprintf ppf "infeasible"
  | Unbounded -> Format.fprintf ppf "unbounded"
