(** Two-phase dense simplex with Bland's rule.

    Sized for the paper's LP relaxations on experiment-scale instances
    (hundreds of variables/constraints), not industrial use. *)

type outcome =
  | Optimal of {
      x : float array;
      value : float;
      duals : float array;
          (** one multiplier per input constraint (input order), read off
              the final tableau. For [Minimize] problems they satisfy
              strong duality: [value = Σ duals.(i) * rhs_i] (verified by
              the test suite on random LPs); for [Maximize] the sign is
              flipped accordingly. Degenerate optima may admit several
              valid dual vectors; one is returned. *)
    }
  | Infeasible
  | Unbounded

(** Solve [p]. Variables are implicitly non-negative.
    [max_iters] guards against cycling/stalls (default [100_000];
    raises [Failure] when exceeded). *)
val solve : ?max_iters:int -> Problem.t -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
