(** Dense linear programs over non-negative variables.

    [min/max c·x  s.t.  A_i·x (≥|≤|=) b_i,  x ≥ 0]

    Used to state the paper's view-side-effect LP relaxation (§IV.C), to
    check feasibility of the combinatorial primal-dual solutions, and as
    input to {!Simplex}. *)

type relop = Ge | Le | Eq

type cstr = {
  coeffs : float array;
  op : relop;
  rhs : float;
  cname : string;
}

type direction = Minimize | Maximize

type t = {
  direction : direction;
  objective : float array;
  constraints : cstr list;
  var_names : string array;
}

val make :
  direction:direction ->
  objective:float array ->
  constraints:cstr list ->
  ?var_names:string array ->
  unit ->
  t

val num_vars : t -> int
val num_constraints : t -> int

(** Objective value of a point. *)
val value : t -> float array -> float

(** Check all constraints and non-negativity within [eps]
    (default 1e-7). Returns the violated constraint names. *)
val violations : ?eps:float -> t -> float array -> string list

val is_feasible : ?eps:float -> t -> float array -> bool

val pp : Format.formatter -> t -> unit
