type relop = Ge | Le | Eq

type cstr = {
  coeffs : float array;
  op : relop;
  rhs : float;
  cname : string;
}

type direction = Minimize | Maximize

type t = {
  direction : direction;
  objective : float array;
  constraints : cstr list;
  var_names : string array;
}

let make ~direction ~objective ~constraints ?var_names () =
  let n = Array.length objective in
  let var_names =
    match var_names with
    | Some names ->
      if Array.length names <> n then invalid_arg "Lp.Problem.make: var_names length";
      names
    | None -> Array.init n (Printf.sprintf "x%d")
  in
  List.iter
    (fun c ->
      if Array.length c.coeffs <> n then
        invalid_arg ("Lp.Problem.make: bad coeff width in constraint " ^ c.cname))
    constraints;
  { direction; objective; constraints; var_names }

let num_vars t = Array.length t.objective
let num_constraints t = List.length t.constraints

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let value t x = dot t.objective x

let violations ?(eps = 1e-7) t x =
  let bad = ref [] in
  Array.iteri
    (fun i v -> if v < -.eps then bad := Printf.sprintf "%s >= 0" t.var_names.(i) :: !bad)
    x;
  List.iter
    (fun c ->
      let lhs = dot c.coeffs x in
      let ok =
        match c.op with
        | Ge -> lhs >= c.rhs -. eps
        | Le -> lhs <= c.rhs +. eps
        | Eq -> Float.abs (lhs -. c.rhs) <= eps
      in
      if not ok then bad := c.cname :: !bad)
    t.constraints;
  List.rev !bad

let is_feasible ?eps t x = violations ?eps t x = []

let pp ppf t =
  let pp_terms ppf coeffs =
    let first = ref true in
    Array.iteri
      (fun i c ->
        if Float.abs c > 1e-12 then begin
          if not !first then Format.fprintf ppf " + ";
          first := false;
          Format.fprintf ppf "%g*%s" c t.var_names.(i)
        end)
      coeffs;
    if !first then Format.fprintf ppf "0"
  in
  Format.fprintf ppf "@[<v>%s %a@ subject to:@ %a@]"
    (match t.direction with Minimize -> "minimize" | Maximize -> "maximize")
    pp_terms t.objective
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf c ->
         Format.fprintf ppf "%s: %a %s %g" c.cname pp_terms c.coeffs
           (match c.op with Ge -> ">=" | Le -> "<=" | Eq -> "=")
           c.rhs))
    t.constraints
