(** Semantics of a candidate deletion [ΔD]: which view tuples die, whether
    all of [ΔV] is realized, and the (weighted) side-effect (§II.C). *)

type outcome = {
  deleted : Relational.Stuple.Set.t;  (** ΔD *)
  killed : Vtuple.Set.t;              (** view tuples eliminated by ΔD *)
  side_effect : Vtuple.Set.t;         (** preserved tuples among [killed] *)
  residual_bad : Vtuple.Set.t;        (** ΔV tuples that survive ΔD *)
  feasible : bool;                    (** [residual_bad] is empty *)
  cost : float;                       (** weighted side-effect, the paper's s_view *)
  balanced_cost : float;              (** weight(residual_bad) + weight(side_effect),
                                          the balanced objective (§III) *)
}

(** Fast evaluation through the witness index. *)
val eval : Provenance.t -> Relational.Stuple.Set.t -> outcome

(** Ground truth by re-running every query on [D \ ΔD] — used by tests to
    validate the index-based evaluation, and by experiments on
    non-key-preserving semantics. *)
val eval_ground_truth : Problem.t -> Relational.Stuple.Set.t -> outcome

val pp : Format.formatter -> outcome -> unit
