module R = Relational

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let prefix p s =
  String.length s > String.length p && String.sub s 0 (String.length p) = p

let rest_of p s = String.trim (String.sub s (String.length p) (String.length s - String.length p))

let of_string ?(allow_non_key_preserving = false) text =
  let lines = String.split_on_char '\n' text in
  let db_lines = Buffer.create 256 in
  let queries = ref [] in
  let deletions = ref [] in
  let weights = ref [] in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line =
        match String.index_opt raw '#' with
        | Some i -> String.trim (String.sub raw 0 i)
        | None -> String.trim raw
      in
      if line = "" then ()
      else if prefix "query " line then begin
        match Cq.Parser.query_of_string (rest_of "query " line) with
        | q -> queries := q :: !queries
        | exception Cq.Parser.Parse_error m -> fail lineno m
      end
      else if prefix "delete " line then begin
        match R.Serial.fact_of_string (rest_of "delete " line) with
        | qname, tuple -> deletions := (qname, tuple) :: !deletions
        | exception R.Serial.Parse_error (_, m) -> fail lineno m
      end
      else if prefix "weight " line then begin
        let body = rest_of "weight " line in
        (* the weight value trails the fact after the closing paren *)
        match String.rindex_opt body ')' with
        | None -> fail lineno "expected ')' in weight line"
        | Some i -> (
          let fact = String.sub body 0 (i + 1) in
          let value = String.trim (String.sub body (i + 1) (String.length body - i - 1)) in
          match
            (R.Serial.fact_of_string fact, float_of_string_opt value)
          with
          | (qname, tuple), Some w -> weights := (Vtuple.make qname tuple, w) :: !weights
          | _, None -> fail lineno ("bad weight value " ^ value)
          | exception R.Serial.Parse_error (_, m) -> fail lineno m)
      end
      else begin
        (* database line: relation declaration or fact *)
        Buffer.add_string db_lines raw;
        Buffer.add_char db_lines '\n'
      end)
    lines;
  let db =
    try R.Serial.instance_of_string (Buffer.contents db_lines)
    with R.Serial.Parse_error (l, m) -> fail l m
  in
  let deletions =
    List.rev !deletions |> List.map (fun (qname, tuple) -> (qname, [ tuple ]))
  in
  try
    Problem.make ~db ~queries:(List.rev !queries) ~deletions
      ~weights:(Weights.of_list (List.rev !weights))
      ~allow_non_key_preserving ()
  with Invalid_argument m -> fail 0 m

let of_file ?allow_non_key_preserving path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string ?allow_non_key_preserving s

let to_string (p : Problem.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (R.Serial.instance_to_string p.Problem.db);
  List.iter
    (fun q -> Buffer.add_string buf (Printf.sprintf "query %s\n" (Cq.Query.to_string q)))
    p.Problem.queries;
  Smap.iter
    (fun qname tuples ->
      R.Tuple.Set.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "delete %s(%s)\n" qname
               (String.concat ", " (List.map R.Value.to_string (R.Tuple.to_list t)))))
        tuples)
    p.Problem.deletions;
  List.iter
    (fun (vt, w) ->
      Buffer.add_string buf
        (Printf.sprintf "weight %s(%s) %g\n" vt.Vtuple.query
           (String.concat ", "
              (List.map R.Value.to_string (R.Tuple.to_list vt.Vtuple.tuple)))
           w))
    (Weights.overrides p.Problem.weights);
  Buffer.contents buf

let to_file path p =
  let oc = open_out path in
  output_string oc (to_string p);
  close_out oc
