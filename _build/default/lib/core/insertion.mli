(** Insertion propagation — the "missing answer" side of view update
    (§VI's view-update context; Cong et al. study annotation propagation
    for both directions). Given a tuple that {e should} appear in a view,
    find source insertions producing it while minimizing the unintended
    {e new} view tuples that appear collaterally (the insertion analogue
    of view side-effect) or the number of inserted tuples.

    The head assignment fixes each atom up to the query's existential
    variables; those range over the active domain plus one fresh constant
    (a fresh value can never join accidentally, so it is always the
    side-effect-minimal choice where keys permit). Exhaustive over the
    assignment space, which is exponential in the number of existential
    variables — query scale only, guarded by [max_assignments]. *)

type result = {
  insertions : Relational.Stuple.Set.t;
  new_views : Vtuple.Set.t;   (** unintended new view tuples, all queries *)
  side_effect : float;        (** weighted [new_views] *)
}

type objective =
  | Fewest_insertions   (** primary: |insertions|; tie-break: side-effect *)
  | Fewest_new_views    (** primary: side-effect; tie-break: |insertions| *)

type error =
  | Already_present          (** the target is already an answer *)
  | Unknown_query of string
  | Arity_mismatch
  | Key_conflict             (** every assignment needs an insertion whose
                                 key already exists with different fields *)
  | Too_many_assignments of int

val solve :
  ?objective:objective ->
  ?max_assignments:int ->
  Problem.t ->
  query:string ->
  target:Relational.Tuple.t ->
  (result, error) Stdlib.result

val pp_error : Format.formatter -> error -> unit
