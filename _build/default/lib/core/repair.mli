(** Combined repairs: query feedback in {e both} directions at once
    (QOCO-style systems accept "this answer is wrong" {e and} "this
    answer is missing", §V). A plan deletes source tuples to remove the
    wrong answers (minimum view side-effect) and inserts source tuples to
    produce the missing ones (minimum spurious new answers), then
    verifies the two halves do not undo each other.

    Solved sequentially — deletions first (exact), then insertions on the
    repaired database (exact per missing answer) — which is optimal for
    each half but not always jointly; the final consistency check catches
    the interactions (an insertion re-deriving a deleted answer), and
    reports them as {!Conflicting} rather than returning a broken plan. *)

type plan = {
  deletions : Relational.Stuple.Set.t;
  insertions : Relational.Stuple.Set.t;
  lost_good : Vtuple.Set.t;      (** preserved answers lost to the deletions *)
  spurious : Vtuple.Set.t;       (** unintended new answers from the insertions *)
  cost : float;                  (** weighted |lost_good| + |spurious| *)
  repaired : Relational.Instance.t;  (** the database after the plan *)
}

type error =
  | Deletion_failed of string
  | Insertion_failed of string
  | Conflicting of string
      (** the halves interact: an insertion re-derives a removed answer *)

val pp_error : Format.formatter -> error -> unit

(** [solve ~db ~queries ~wrong ~missing ()] — [wrong] lists view tuples
    to remove per query, [missing] lists view tuples to create.
    Exponential (exact halves); example scale. *)
val solve :
  db:Relational.Instance.t ->
  queries:Cq.Query.t list ->
  wrong:(string * Relational.Tuple.t list) list ->
  missing:(string * Relational.Tuple.t) list ->
  ?weights:Weights.t ->
  unit ->
  (plan, error) Stdlib.result
