(** The hardness reductions of Theorems 1 and 2, used constructively: they
    turn Red-Blue Set Cover (resp. Positive-Negative Partial Set Cover)
    instances into deletion-propagation instances on which the optimal
    costs coincide — the repository's generator of provably hard
    families (experiments E2 and E8).

    Construction (proof of Thm 1, with one explicit pad column):
    a single relation [T] whose key is a pad column holding a unique id
    per set; one further column per element of [R ∪ B], holding the
    element's name when the set contains it and a fresh constant
    otherwise. For every element [e], a project-free (hence
    key-preserving) query [Q_e] joins — via pad constants — exactly the
    tuples of the sets containing [e], producing a one-tuple view.
    [ΔV] = the views of the blue elements. Deleting source tuple [t_C]
    kills [Q_e(D)] iff [e ∈ C]: solutions are sub-collections, blue
    coverage is feasibility, red coverage is side-effect — costs map
    exactly. *)

type t = {
  problem : Problem.t;
  set_stuple : Relational.Stuple.t array;  (** set index -> tuple of T *)
  red_query : (int * string) list;   (** red/negative element -> its query *)
  blue_query : (int * string) list;  (** blue/positive element -> its query *)
}

(** [of_red_blue rb] — [Error] when some blue element is in no set
    (uncoverable) . Red weights become view-tuple weights. *)
val of_red_blue : Setcover.Red_blue.t -> (t, string) Stdlib.result

(** Thm 2's variant: positives become [ΔV] (their survival is priced),
    negatives become preserved views; the balanced cost equals the PNPSC
    cost. [Error] when some positive is in no set. *)
val of_pos_neg : Setcover.Pos_neg.t -> (t, string) Stdlib.result

(** Interpret a deletion as a chosen sub-collection (set indices). *)
val chosen_sets : t -> Relational.Stuple.Set.t -> int list
