lib/core/single_query.mli: Format Provenance Relational Side_effect Stdlib
