lib/core/diagnosis.ml: Array Cq Float Format Hashtbl List Printf Problem Provenance Relational Side_effect String
