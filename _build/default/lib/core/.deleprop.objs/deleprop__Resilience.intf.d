lib/core/resilience.mli: Cq Relational
