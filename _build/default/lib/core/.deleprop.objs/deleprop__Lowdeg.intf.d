lib/core/lowdeg.mli: Problem Provenance Relational Side_effect
