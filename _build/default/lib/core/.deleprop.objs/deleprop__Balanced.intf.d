lib/core/balanced.mli: Dp_tree Problem Provenance Relational Side_effect Stdlib
