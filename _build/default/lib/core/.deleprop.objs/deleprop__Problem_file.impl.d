lib/core/problem_file.ml: Buffer Cq List Printf Problem Relational Smap String Vtuple Weights
