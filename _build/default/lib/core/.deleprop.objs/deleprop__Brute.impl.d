lib/core/brute.ml: Array Cq List Printf Problem Provenance Reduction Relational Setcover Side_effect
