lib/core/vtuple.ml: Format Relational Stdlib String
