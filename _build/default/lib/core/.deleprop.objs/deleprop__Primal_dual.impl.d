lib/core/primal_dual.ml: Hashtbl Hypergraph Int List Logs Option Problem Provenance Relational Side_effect Vtuple Weights
