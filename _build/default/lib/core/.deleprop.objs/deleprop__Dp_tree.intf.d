lib/core/dp_tree.mli: Format Provenance Relational Side_effect Stdlib
