lib/core/provenance.mli: Format Problem Relational Smap Vtuple
