lib/core/lp_formulation.mli: Lp Provenance Relational Vtuple
