lib/core/repair.mli: Cq Format Relational Stdlib Vtuple Weights
