lib/core/source_side_effect.ml: Array Hashtbl List Option Provenance Relational Seq Setcover Side_effect Vtuple
