lib/core/bounded.ml: Array Fun List Option Problem Provenance Relational Side_effect Vtuple Weights
