lib/core/single_query.ml: Format List Problem Provenance Relational Side_effect Vtuple Weights
