lib/core/stats.ml: Dp_tree Format General_approx Hypergraph List Lowdeg Printf Problem Provenance Relational Vtuple
