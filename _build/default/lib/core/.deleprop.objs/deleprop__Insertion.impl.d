lib/core/insertion.ml: Array Cq Format List Problem Relational Vtuple Weights
