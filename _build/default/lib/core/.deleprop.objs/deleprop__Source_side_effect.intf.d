lib/core/source_side_effect.mli: Provenance Relational Side_effect Stdlib
