lib/core/insertion.mli: Format Problem Relational Stdlib Vtuple
