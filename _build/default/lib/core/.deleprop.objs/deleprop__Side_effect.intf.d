lib/core/side_effect.mli: Format Problem Provenance Relational Vtuple
