lib/core/hardness.ml: Array Cq Fun Hashtbl List Printf Problem Relational Setcover String Vtuple Weights
