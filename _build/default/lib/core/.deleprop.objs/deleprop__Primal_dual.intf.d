lib/core/primal_dual.mli: Provenance Relational Side_effect Vtuple
