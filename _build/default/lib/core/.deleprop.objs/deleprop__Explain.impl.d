lib/core/explain.ml: Format List Provenance Relational Side_effect Vtuple
