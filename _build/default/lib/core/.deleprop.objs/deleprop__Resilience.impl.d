lib/core/resilience.ml: Array Cq List Printf Problem Provenance Relational Side_effect Source_side_effect
