lib/core/provenance.ml: Array Cq Format List Option Problem Relational Smap Vtuple Weights
