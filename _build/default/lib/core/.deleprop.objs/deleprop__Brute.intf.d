lib/core/brute.mli: Problem Provenance Relational Side_effect
