lib/core/lp_formulation.ml: Array Format Hashtbl List Lp Problem Provenance Relational Seq Vtuple Weights
