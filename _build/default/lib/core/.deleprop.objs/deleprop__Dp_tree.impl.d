lib/core/dp_tree.ml: Format Hashtbl Hypergraph List Logs Option Problem Provenance Relational Side_effect Vtuple Weights
