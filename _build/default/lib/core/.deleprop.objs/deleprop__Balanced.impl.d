lib/core/balanced.ml: Dp_tree Float List Primal_dual Problem Provenance Reduction Relational Setcover Side_effect Vtuple Weights
