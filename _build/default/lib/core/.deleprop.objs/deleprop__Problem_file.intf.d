lib/core/problem_file.mli: Problem
