lib/core/smap.ml: Stdlib String
