lib/core/explain.mli: Format Provenance Relational Side_effect Vtuple
