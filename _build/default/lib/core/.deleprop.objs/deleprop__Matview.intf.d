lib/core/matview.mli: Cq Problem Relational Weights
