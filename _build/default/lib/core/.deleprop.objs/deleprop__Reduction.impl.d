lib/core/reduction.ml: Array List Problem Provenance Relational Seq Setcover Vtuple Weights
