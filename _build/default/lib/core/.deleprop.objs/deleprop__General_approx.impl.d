lib/core/general_approx.ml: Problem Provenance Reduction Relational Setcover Side_effect
