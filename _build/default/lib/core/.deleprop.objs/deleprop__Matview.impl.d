lib/core/matview.ml: Cq List Option Problem Relational Smap
