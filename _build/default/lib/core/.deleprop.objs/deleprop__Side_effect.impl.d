lib/core/side_effect.ml: Cq Format List Printf Problem Provenance Relational Smap Vtuple Weights
