lib/core/weights.mli: Format Vtuple
