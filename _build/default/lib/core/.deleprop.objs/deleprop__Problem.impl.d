lib/core/problem.ml: Cq Format List Option Relational Smap String Weights
