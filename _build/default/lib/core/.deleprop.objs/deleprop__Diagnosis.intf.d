lib/core/diagnosis.mli: Format Problem Provenance Relational
