lib/core/bounded.mli: Provenance Relational Side_effect
