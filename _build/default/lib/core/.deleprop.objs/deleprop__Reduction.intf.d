lib/core/reduction.mli: Provenance Relational Setcover Vtuple
