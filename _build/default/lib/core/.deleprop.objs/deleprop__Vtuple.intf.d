lib/core/vtuple.mli: Format Relational Stdlib
