lib/core/portfolio.ml: Brute Domain Dp_tree Float Fun General_approx List Lowdeg Option Primal_dual Provenance Relational Side_effect Single_query Sys Unix
