lib/core/hardness.mli: Problem Relational Setcover Stdlib
