lib/core/weights.ml: Format List Option Vtuple
