lib/core/problem.mli: Cq Format Relational Smap Weights
