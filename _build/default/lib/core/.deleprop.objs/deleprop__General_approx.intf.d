lib/core/general_approx.mli: Problem Provenance Relational Side_effect
