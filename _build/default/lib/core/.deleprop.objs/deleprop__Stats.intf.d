lib/core/stats.mli: Format Provenance
