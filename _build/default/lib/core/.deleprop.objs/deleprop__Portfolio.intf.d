lib/core/portfolio.mli: Provenance Relational Side_effect
