lib/core/repair.ml: Brute Cq Format Insertion List Problem Relational Side_effect Vtuple Weights
