lib/core/lowdeg.ml: Int List Logs Primal_dual Problem Provenance Relational Side_effect Vtuple
