module R = Relational

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
}

let result_of prov deletion = { deletion; outcome = Side_effect.eval prov deletion }

let solve_exact ?node_budget prov =
  let m = Reduction.to_pos_neg prov in
  let sol = Setcover.Pos_neg.solve_exact ?node_budget m.Reduction.instance in
  result_of prov (Reduction.deletion_of_pos_neg m sol)

let solve_general prov =
  let m = Reduction.to_pos_neg prov in
  let sol = Setcover.Pos_neg.solve_approx m.Reduction.instance in
  result_of prov (Reduction.deletion_of_pos_neg m sol)

let solve_dp prov =
  match Dp_tree.solve ~objective:Dp_tree.Balanced prov with
  | Ok r -> Ok (result_of prov r.Dp_tree.deletion)
  | Error e -> Error e

let solve_tree (prov : Provenance.t) =
  let weights = prov.Provenance.problem.Problem.weights in
  let pd = Primal_dual.solve prov in
  (* improvement pass: greedily drop deletions whose marginal balanced
     contribution is negative. Dropping t re-exposes the bad tuples only
     t covers (cost: their weight) but saves the preserved tuples only t
     destroys (gain: their weight). Iterate to a fixed point. *)
  let rec improve deletion =
    let marginal t =
      let rest = R.Stuple.Set.remove t deletion in
      let covered_by_rest = Provenance.kills prov rest in
      let only_t =
        Vtuple.Set.diff (Provenance.vtuples_containing prov t) covered_by_rest
      in
      let re_exposed_bad = Vtuple.Set.inter only_t prov.Provenance.bad in
      let saved_preserved = Vtuple.Set.inter only_t prov.Provenance.preserved in
      Weights.total weights saved_preserved -. Weights.total weights re_exposed_bad
    in
    let droppable =
      R.Stuple.Set.fold
        (fun t best ->
          let m = marginal t in
          match best with
          | Some (_, m') when m' >= m -> best
          | _ when m > 1e-12 -> Some (t, m)
          | _ -> best)
        deletion None
    in
    match droppable with
    | Some (t, _) -> improve (R.Stuple.Set.remove t deletion)
    | None -> deletion
  in
  let candidates =
    [ improve pd.Primal_dual.deletion; R.Stuple.Set.empty; pd.Primal_dual.deletion ]
  in
  let best =
    List.map (fun d -> result_of prov d) candidates
    |> List.sort (fun a b ->
           Float.compare a.outcome.Side_effect.balanced_cost
             b.outcome.Side_effect.balanced_cost)
    |> List.hd
  in
  best

let bound (problem : Problem.t) =
  let l = float_of_int (Problem.max_arity problem) in
  let v = float_of_int (Problem.view_size problem) in
  let dv = float_of_int (max 2 (Problem.deletion_size problem)) in
  2.0 *. sqrt (l *. (v +. dv) *. log dv)
