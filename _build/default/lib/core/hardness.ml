module R = Relational

type t = {
  problem : Problem.t;
  set_stuple : R.Stuple.t array;
  red_query : (int * string) list;
  blue_query : (int * string) list;
}

(* Core construction, parameterized by the two element families.
   [reds]: (index, weight, member sets); [blues]: (index, member sets).
   [balanced] decides whether blue views go to ΔV with their weights. *)
let build ~num_sets ~set_label ~reds ~blues ~blue_weight =
  R.Value.reset_fresh ();
  let num_red = List.length reds and num_blue = List.length blues in
  let missing =
    List.filter_map (fun (b, members) -> if members = [] then Some b else None) blues
  in
  if missing <> [] then
    Error
      (Printf.sprintf "uncoverable blue/positive element(s): %s"
         (String.concat ", " (List.map string_of_int missing)))
  else begin
    (* column layout: 0 = pad (key), 1..num_red = reds, then blues *)
    let width = 1 + num_red + num_blue in
    let red_col = Hashtbl.create 16 and blue_col = Hashtbl.create 16 in
    List.iteri (fun i (r, _, _) -> Hashtbl.replace red_col r (1 + i)) reds;
    List.iteri (fun i (b, _) -> Hashtbl.replace blue_col b (1 + num_red + i)) blues;
    let schema =
      R.Schema.Db.of_list
        [ R.Schema.make_anon ~name:"T" ~arity:width ~key:[ 0 ] ]
    in
    (* tuple for set j *)
    let member_reds = Array.make num_sets [] and member_blues = Array.make num_sets [] in
    List.iter (fun (r, _, sets) -> List.iter (fun j -> member_reds.(j) <- r :: member_reds.(j)) sets) reds;
    List.iter (fun (b, sets) -> List.iter (fun j -> member_blues.(j) <- b :: member_blues.(j)) sets) blues;
    let tuple_of_set j =
      let cells = Array.init width (fun _ -> R.Value.fresh ()) in
      cells.(0) <- R.Value.str (set_label j);
      List.iter (fun r -> cells.(Hashtbl.find red_col r) <- R.Value.str (Printf.sprintf "r%d" r)) member_reds.(j);
      List.iter (fun b -> cells.(Hashtbl.find blue_col b) <- R.Value.str (Printf.sprintf "b%d" b)) member_blues.(j);
      R.Tuple.make cells
    in
    let set_tuples = Array.init num_sets tuple_of_set in
    let db =
      Array.fold_left (fun db t -> R.Instance.add db "T" t) (R.Instance.empty schema) set_tuples
    in
    let set_stuple = Array.map (R.Stuple.make "T") set_tuples in
    (* query for an element joining the tuples of [members]; fresh variable
       names per atom so everything lands in the head (project-free) *)
    let query_for name members =
      let atoms, head =
        List.fold_left
          (fun (atoms, head) j ->
            let vars =
              List.init (width - 1) (fun i -> Cq.Term.var (Printf.sprintf "X_%d_%d" j (i + 1)))
            in
            let atom = Cq.Atom.make "T" (Cq.Term.str (set_label j) :: vars) in
            (atom :: atoms, List.rev_append vars head))
          ([], []) members
      in
      Cq.Query.make ~name ~head:(List.rev head) ~body:(List.rev atoms)
    in
    (* the single view tuple of such a query: concatenation of the member
       tuples' non-pad columns *)
    let view_tuple members =
      List.concat_map
        (fun j -> List.tl (R.Tuple.to_list set_tuples.(j)))
        members
      |> R.Tuple.of_list
    in
    let red_query =
      List.filter_map
        (fun (r, _, sets) ->
          if sets = [] then None else Some (r, Printf.sprintf "Qr%d" r))
        reds
    in
    let blue_query = List.map (fun (b, _) -> (b, Printf.sprintf "Qb%d" b)) blues in
    let queries =
      List.filter_map
        (fun (r, _, sets) ->
          if sets = [] then None else Some (query_for (Printf.sprintf "Qr%d" r) sets))
        reds
      @ List.map (fun (b, sets) -> query_for (Printf.sprintf "Qb%d" b) sets) blues
    in
    let deletions =
      List.map
        (fun (b, sets) -> (Printf.sprintf "Qb%d" b, [ view_tuple sets ]))
        blues
    in
    let weights =
      let w = Weights.uniform in
      let w =
        List.fold_left
          (fun w (r, weight, sets) ->
            if sets = [] then w
            else
              Weights.set w
                (Vtuple.make (Printf.sprintf "Qr%d" r) (view_tuple sets))
                weight)
          w reds
      in
      List.fold_left
        (fun w (b, sets) ->
          Weights.set w
            (Vtuple.make (Printf.sprintf "Qb%d" b) (view_tuple sets))
            (blue_weight b))
        w blues
    in
    let problem = Problem.make ~db ~queries ~deletions ~weights () in
    Ok { problem; set_stuple; red_query; blue_query }
  end

let of_red_blue (rb : Setcover.Red_blue.t) =
  let num_sets = Setcover.Red_blue.num_sets rb in
  let member_sets elem side =
    List.init num_sets Fun.id
    |> List.filter (fun j ->
           let s = rb.Setcover.Red_blue.sets.(j) in
           match side with
           | `Red -> Setcover.Iset.mem elem s.Setcover.Red_blue.red
           | `Blue -> Setcover.Iset.mem elem s.Setcover.Red_blue.blue)
  in
  let reds =
    List.init (Setcover.Red_blue.num_red rb) (fun r ->
        (r, rb.Setcover.Red_blue.red_weights.(r), member_sets r `Red))
  in
  let blues =
    List.init rb.Setcover.Red_blue.num_blue (fun b -> (b, member_sets b `Blue))
  in
  build ~num_sets ~set_label:(Printf.sprintf "s%d") ~reds ~blues ~blue_weight:(fun _ -> 1.0)

let of_pos_neg (pn : Setcover.Pos_neg.t) =
  let num_sets = Setcover.Pos_neg.num_sets pn in
  let member_sets elem side =
    List.init num_sets Fun.id
    |> List.filter (fun j ->
           let s = pn.Setcover.Pos_neg.sets.(j) in
           match side with
           | `Neg -> Setcover.Iset.mem elem s.Setcover.Pos_neg.neg
           | `Pos -> Setcover.Iset.mem elem s.Setcover.Pos_neg.pos)
  in
  let negs =
    List.init (Setcover.Pos_neg.num_neg pn) (fun n ->
        (n, pn.Setcover.Pos_neg.neg_weights.(n), member_sets n `Neg))
  in
  let poss =
    List.init (Setcover.Pos_neg.num_pos pn) (fun p -> (p, member_sets p `Pos))
  in
  build ~num_sets ~set_label:(Printf.sprintf "s%d") ~reds:negs ~blues:poss
    ~blue_weight:(fun p -> pn.Setcover.Pos_neg.pos_weights.(p))

let chosen_sets t deletion =
  Array.to_list (Array.mapi (fun i st -> (i, st)) t.set_stuple)
  |> List.filter_map (fun (i, st) ->
         if R.Stuple.Set.mem st deletion then Some i else None)
