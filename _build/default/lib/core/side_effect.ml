module R = Relational

type outcome = {
  deleted : R.Stuple.Set.t;
  killed : Vtuple.Set.t;
  side_effect : Vtuple.Set.t;
  residual_bad : Vtuple.Set.t;
  feasible : bool;
  cost : float;
  balanced_cost : float;
}

let outcome_of ~problem ~bad ~preserved ~deleted ~killed =
  let weights = problem.Problem.weights in
  let side_effect = Vtuple.Set.inter killed preserved in
  let residual_bad = Vtuple.Set.diff bad killed in
  let cost = Weights.total weights side_effect in
  {
    deleted;
    killed;
    side_effect;
    residual_bad;
    feasible = Vtuple.Set.is_empty residual_bad;
    cost;
    balanced_cost = cost +. Weights.total weights residual_bad;
  }

let eval (prov : Provenance.t) deleted =
  let killed = Provenance.kills prov deleted in
  outcome_of ~problem:prov.Provenance.problem ~bad:prov.Provenance.bad
    ~preserved:prov.Provenance.preserved ~deleted ~killed

let eval_ground_truth (problem : Problem.t) deleted =
  let db' = R.Instance.delete problem.Problem.db deleted in
  let vtuples_of qname view =
    R.Tuple.Set.fold (fun t acc -> Vtuple.Set.add (Vtuple.make qname t) acc) view
      Vtuple.Set.empty
  in
  let killed, all =
    List.fold_left
      (fun (killed, all) (q : Cq.Query.t) ->
        let before = Cq.Eval.evaluate problem.Problem.db q in
        let after = Cq.Eval.evaluate db' q in
        let gone = R.Tuple.Set.diff before after in
        ( Vtuple.Set.union killed (vtuples_of q.name gone),
          Vtuple.Set.union all (vtuples_of q.name before) ))
      (Vtuple.Set.empty, Vtuple.Set.empty)
      problem.Problem.queries
  in
  let bad =
    Smap.fold
      (fun qname ts acc -> Vtuple.Set.union acc (vtuples_of qname ts))
      problem.Problem.deletions Vtuple.Set.empty
  in
  let preserved = Vtuple.Set.diff all bad in
  outcome_of ~problem ~bad ~preserved ~deleted ~killed

let pp ppf o =
  Format.fprintf ppf
    "deleted %d source tuples; killed %d view tuples (%d side-effect, cost %g); %s"
    (R.Stuple.Set.cardinal o.deleted)
    (Vtuple.Set.cardinal o.killed)
    (Vtuple.Set.cardinal o.side_effect)
    o.cost
    (if o.feasible then "feasible"
     else Printf.sprintf "INFEASIBLE (%d bad tuples survive)" (Vtuple.Set.cardinal o.residual_bad))
