type t = {
  query : string;
  tuple : Relational.Tuple.t;
}

let make query tuple = { query; tuple }

let compare a b =
  let c = String.compare a.query b.query in
  if c <> 0 then c else Relational.Tuple.compare a.tuple b.tuple

let equal a b = compare a b = 0

let pp ppf t = Format.fprintf ppf "%s%a" t.query Relational.Tuple.pp t.tuple
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)
