module R = Relational

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
}

let solve ~k ?(node_budget = 5_000_000) (prov : Provenance.t) =
  let candidates = Array.of_list (R.Stuple.Set.elements (Provenance.candidates prov)) in
  let bad = Array.of_list (Vtuple.Set.elements prov.Provenance.bad) in
  let weights = prov.Provenance.problem.Problem.weights in
  (* per candidate: which bad tuples it kills, and its preserved cost *)
  let kills =
    Array.map
      (fun st ->
        let vts = Provenance.vtuples_containing prov st in
        Array.to_list bad
        |> List.mapi (fun i vt -> (i, vt))
        |> List.filter_map (fun (i, vt) -> if Vtuple.Set.mem vt vts then Some i else None))
      candidates
  in
  (* candidates hitting each bad tuple *)
  let containing = Array.make (Array.length bad) [] in
  Array.iteri (fun c is -> List.iter (fun i -> containing.(i) <- c :: containing.(i)) is) kills;
  if Array.exists (fun l -> l = []) containing then None
  else begin
    let nodes = ref 0 in
    let best = ref None and best_cost = ref infinity in
    let cost_of deletion =
      Weights.total weights
        (Vtuple.Set.inter (Provenance.kills prov deletion) prov.Provenance.preserved)
    in
    let rec go covered deletion depth =
      incr nodes;
      if !nodes > node_budget then failwith "Bounded.solve: node budget exceeded";
      let cost = cost_of deletion in
      if cost >= !best_cost then ()
      else if List.for_all (fun i -> List.mem i covered) (List.init (Array.length bad) Fun.id)
      then begin
        best_cost := cost;
        best := Some deletion
      end
      else if depth >= k then ()
      else begin
        (* branch on an uncovered bad tuple with fewest killers *)
        let target =
          List.init (Array.length bad) Fun.id
          |> List.filter (fun i -> not (List.mem i covered))
          |> List.fold_left
               (fun acc i ->
                 match acc with
                 | Some j when List.length containing.(j) <= List.length containing.(i) -> acc
                 | _ -> Some i)
               None
        in
        match target with
        | None -> ()
        | Some i ->
          List.iter
            (fun c ->
              go (kills.(c) @ covered) (R.Stuple.Set.add candidates.(c) deletion) (depth + 1))
            containing.(i)
      end
    in
    go [] R.Stuple.Set.empty 0;
    Option.map
      (fun deletion -> { deletion; outcome = Side_effect.eval prov deletion })
      !best
  end

let solve_greedy ~k (prov : Provenance.t) =
  let weights = prov.Provenance.problem.Problem.weights in
  let candidates = Array.of_list (R.Stuple.Set.elements (Provenance.candidates prov)) in
  let covered = ref Vtuple.Set.empty in
  let deletion = ref R.Stuple.Set.empty in
  (try
     for _ = 1 to k do
       if Vtuple.Set.subset prov.Provenance.bad !covered then raise Exit;
       let best = ref None and best_score = ref neg_infinity in
       Array.iter
         (fun st ->
           if not (R.Stuple.Set.mem st !deletion) then begin
             let vts = Provenance.vtuples_containing prov st in
             let new_bad =
               Weights.total weights
                 (Vtuple.Set.diff (Vtuple.Set.inter vts prov.Provenance.bad) !covered)
             in
             if new_bad > 0.0 then begin
               let damage =
                 Weights.total weights (Vtuple.Set.inter vts prov.Provenance.preserved)
               in
               let score = new_bad /. (1.0 +. damage) in
               if score > !best_score then begin
                 best_score := score;
                 best := Some st
               end
             end
           end)
         candidates;
       match !best with
       | Some st ->
         covered :=
           Vtuple.Set.union !covered
             (Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.bad);
         deletion := R.Stuple.Set.add st !deletion
       | None -> raise Exit
     done
   with Exit -> ());
  let outcome = Side_effect.eval prov !deletion in
  if outcome.Side_effect.feasible then Some { deletion = !deletion; outcome } else None

let min_budget ?node_budget (prov : Provenance.t) =
  let n = Vtuple.Set.cardinal prov.Provenance.bad in
  let rec search k =
    if k > n then None
    else
      match solve ~k ?node_budget prov with
      | Some _ -> Some k
      | None -> search (k + 1)
  in
  if n = 0 then Some 0 else search 1

let frontier ?node_budget ~slack prov =
  match min_budget ?node_budget prov with
  | None -> []
  | Some k0 ->
    List.init (slack + 1) (fun i -> k0 + i)
    |> List.filter_map (fun k ->
           solve ~k ?node_budget prov |> Option.map (fun r -> (k, r)))
