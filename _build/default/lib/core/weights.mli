(** Preservation weights on view tuples (§IV: "each view tuple to be
    preserved has a weight representing user preference").

    In the balanced variant, weights on the [ΔV] tuples price keeping a
    bad tuple; weights on preserved tuples price losing a good one. *)

type t

(** Unit weights. *)
val uniform : t

(** [with_default d] — every view tuple weighs [d]. *)
val with_default : float -> t

(** [set w vt x] — override the weight of one view tuple. *)
val set : t -> Vtuple.t -> float -> t

val of_list : ?default:float -> (Vtuple.t * float) list -> t

val get : t -> Vtuple.t -> float

(** The default weight and the explicit overrides (for serialization). *)
val default_of : t -> float

val overrides : t -> (Vtuple.t * float) list

(** Total weight of a set of view tuples. *)
val total : t -> Vtuple.Set.t -> float

val pp : Format.formatter -> t -> unit
