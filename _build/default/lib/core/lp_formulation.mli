(** The paper's LP relaxation of view side-effect (§IV.C, formulas
    (1)–(5)) stated explicitly, for feasibility checks and lower bounds.

    Variables: [y_t] per source tuple (deleted), [x_r] per preserved view
    tuple (lost). Constraints:
    - per bad [r]:        [Σ_{t ∈ witness(r)} y_t ≥ 1]         (3)
    - per preserved [r]:  [k_r·x_r − Σ_{t ∈ witness(r)} y_t ≥ 0] (2)
    with [k_r = |witness(r)|]; objective [min Σ w_r·x_r]. The integral
    optimum equals the combinatorial optimum; the LP value from
    {!Simplex} lower-bounds it (experiment E11). *)

type t = {
  lp : Lp.Problem.t;
  tuple_var : Relational.Stuple.t array;   (** y-variable index -> tuple *)
  preserved_var : Vtuple.t array;          (** x-variable index (offset by
                                               [Array.length tuple_var]) -> view tuple *)
}

(** Build the LP over the candidate tuples. *)
val build : Provenance.t -> t

(** LP optimum (lower bound on the integral optimum); [None] when the
    solver fails (infeasible cannot happen: deleting everything is
    feasible). *)
val lower_bound : Provenance.t -> float option

(** The point corresponding to a concrete deletion (integral), for
    feasibility checks. *)
val point_of_deletion : t -> Provenance.t -> Relational.Stuple.Set.t -> float array
