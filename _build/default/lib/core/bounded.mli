(** Bounded deletion propagation (Miao et al. [36], the paper's Table V:
    "NP(k)-complete ... when the deletion could be bounded in advance
    based on priori knowledge"): find [ΔD] with [|ΔD| ≤ k] realizing all
    of [ΔV] with minimum view side-effect, or report that no such [ΔD]
    exists.

    The budget models prior knowledge of how many source errors there can
    be — the cleaning setting of §V with a known corruption count.
    Exact by bounded-depth branch-and-bound. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
}

(** [solve ~k prov] — [None] when no feasible deletion of size ≤ k
    exists. *)
val solve : k:int -> ?node_budget:int -> Provenance.t -> result option

(** The smallest budget admitting a feasible solution — i.e. the
    (unweighted) source-side-effect optimum. *)
val min_budget : ?node_budget:int -> Provenance.t -> int option

(** Greedy heuristic via budgeted maximum coverage (1 − 1/e guarantee on
    the number of bad tuples covered, none on the side-effect): pick up
    to [k] tuples, each maximizing newly-killed bad weight per unit of
    preserved weight hit. [None] when the greedy pick leaves some bad
    tuple alive — the exact solver may still find a feasible plan. *)
val solve_greedy : k:int -> Provenance.t -> result option

(** The side-effect cost along the budget sweep [k = min_budget ..
    min_budget + slack]: the trade-off between deletion budget and view
    damage (experiment E16). *)
val frontier :
  ?node_budget:int -> slack:int -> Provenance.t -> (int * result) list
