module R = Relational

type t = {
  optimal_cost : float;
  plans : R.Stuple.Set.t list;
  certain : R.Stuple.Set.t;
  possible : R.Stuple.Set.t;
}

(* enumerate all feasible plans over [candidates] with their costs *)
let all_plans candidates eval_cost =
  let n = Array.length candidates in
  let acc = ref [] in
  for mask = 0 to (1 lsl n) - 1 do
    let dd = ref R.Stuple.Set.empty in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then dd := R.Stuple.Set.add candidates.(i) !dd
    done;
    match eval_cost !dd with
    | Some cost -> acc := (cost, !dd) :: !acc
    | None -> ()
  done;
  !acc

let minimal_only plans =
  List.filter
    (fun p ->
      not
        (List.exists
           (fun p' -> (not (R.Stuple.Set.equal p p')) && R.Stuple.Set.subset p' p)
           plans))
    plans

let of_plans plans =
  match plans with
  | [] -> None
  | (cost0, _) :: _ ->
    let optimal_cost =
      List.fold_left (fun acc (c, _) -> Float.min acc c) cost0 plans
    in
    let optimal =
      List.filter_map
        (fun (c, p) -> if Float.abs (c -. optimal_cost) < 1e-9 then Some p else None)
        plans
      |> minimal_only
    in
    let certain =
      match optimal with
      | p :: rest -> List.fold_left R.Stuple.Set.inter p rest
      | [] -> R.Stuple.Set.empty
    in
    let possible = List.fold_left R.Stuple.Set.union R.Stuple.Set.empty optimal in
    Some { optimal_cost; plans = optimal; certain; possible }

let guard name n max_candidates =
  if n > max_candidates then
    invalid_arg (Printf.sprintf "%s: %d candidates exceed the limit %d" name n max_candidates)

let diagnose ?(max_candidates = 18) (prov : Provenance.t) =
  let candidates = Array.of_list (R.Stuple.Set.elements (Provenance.candidates prov)) in
  guard "Diagnosis.diagnose" (Array.length candidates) max_candidates;
  all_plans candidates (fun dd ->
      let o = Side_effect.eval prov dd in
      if o.Side_effect.feasible then Some o.Side_effect.cost else None)
  |> of_plans

let diagnose_ground_truth ?(max_candidates = 18) (problem : Problem.t) =
  (* candidates: tuples in any witness of a bad view tuple *)
  let candidates =
    List.fold_left
      (fun acc (q : Cq.Query.t) ->
        let bad = Problem.deletion problem q.name in
        if R.Tuple.Set.is_empty bad then acc
        else
          let prov = Cq.Eval.provenance problem.Problem.db q in
          R.Tuple.Set.fold
            (fun t acc ->
              match R.Tuple.Map.find_opt t prov with
              | None -> acc
              | Some ws ->
                List.fold_left
                  (fun acc w -> R.Stuple.Set.union acc (Cq.Eval.witness_set w))
                  acc ws)
            bad acc)
      R.Stuple.Set.empty problem.Problem.queries
    |> R.Stuple.Set.elements |> Array.of_list
  in
  guard "Diagnosis.diagnose_ground_truth" (Array.length candidates) max_candidates;
  all_plans candidates (fun dd ->
      let o = Side_effect.eval_ground_truth problem dd in
      if o.Side_effect.feasible then Some o.Side_effect.cost else None)
  |> of_plans

let top_plans ?(max_candidates = 18) ~k (prov : Provenance.t) =
  let candidates = Array.of_list (R.Stuple.Set.elements (Provenance.candidates prov)) in
  guard "Diagnosis.top_plans" (Array.length candidates) max_candidates;
  let plans =
    all_plans candidates (fun dd ->
        let o = Side_effect.eval prov dd in
        if o.Side_effect.feasible then Some o.Side_effect.cost else None)
  in
  (* bucket by cost, minimal plans only per bucket, cheapest buckets first *)
  let buckets = Hashtbl.create 16 in
  List.iter
    (fun (c, p) ->
      let key = Printf.sprintf "%.9f" c in
      Hashtbl.replace buckets key
        (c, p :: (match Hashtbl.find_opt buckets key with Some (_, l) -> l | None -> [])))
    plans;
  Hashtbl.fold (fun _ (c, ps) acc -> (c, minimal_only ps) :: acc) buckets []
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
  |> List.filteri (fun i _ -> i < k)

let pp ppf t =
  let pp_set ppf s =
    Format.fprintf ppf "{%s}"
      (String.concat ", " (List.map R.Stuple.to_string (R.Stuple.Set.elements s)))
  in
  Format.fprintf ppf
    "@[<v>optimal cost %g, %d optimal plan(s)@ certain: %a@ possible: %a@]" t.optimal_cost
    (List.length t.plans) pp_set t.certain pp_set t.possible
