(** Diagnosis across {e all} optimal repairs — the paper's data-annotation
    story (§V) as an operation: "there are usually multiple optimal
    solutions ... the candidates will be found more accurately" by
    merging feedback. This module enumerates the optimal (and
    near-optimal) deletion plans and classifies source tuples:

    - {e certain}: in every optimal plan — safe to annotate as wrong;
    - {e possible}: in at least one optimal plan — candidates needing
      more feedback;
    - a tuple in no optimal plan is exonerated.

    Experiment E14/the annotation example show certain sets growing as
    views contribute feedback. Exponential (enumerates plans); bounded by
    [max_candidates]. *)

type t = {
  optimal_cost : float;
  plans : Relational.Stuple.Set.t list;   (** all inclusion-minimal optimal plans *)
  certain : Relational.Stuple.Set.t;      (** intersection of the plans *)
  possible : Relational.Stuple.Set.t;     (** union of the plans *)
}

(** [diagnose prov] — under key-preserving (unique witness) semantics.
    [None] when the instance is infeasible (cannot happen with non-empty
    witnesses). Raises [Invalid_argument] beyond [max_candidates]
    (default 18). *)
val diagnose : ?max_candidates:int -> Provenance.t -> t option

(** Ground-truth variant for non-key-preserving query sets (slower). *)
val diagnose_ground_truth : ?max_candidates:int -> Problem.t -> t option

(** Top-[k] distinct plans by cost (optimal first, then next-best...),
    each as (cost, plan); plans of equal cost are grouped in the same
    bucket. Useful for presenting alternatives to an expert. *)
val top_plans :
  ?max_candidates:int -> k:int -> Provenance.t ->
  (float * Relational.Stuple.Set.t list) list

val pp : Format.formatter -> t -> unit
