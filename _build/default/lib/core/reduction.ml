module R = Relational

type rbsc = {
  instance : Setcover.Red_blue.t;
  set_tuple : R.Stuple.t array;
  red_vtuple : Vtuple.t array;
  blue_vtuple : Vtuple.t array;
}

type pnpsc = {
  instance : Setcover.Pos_neg.t;
  set_tuple : R.Stuple.t array;
  neg_vtuple : Vtuple.t array;
  pos_vtuple : Vtuple.t array;
}

(* Shared scaffolding: candidate tuples, bad indexing, touched preserved
   indexing, and the per-candidate (preserved, bad) membership sets. *)
let skeleton (prov : Provenance.t) =
  let candidates = R.Stuple.Set.elements (Provenance.candidates prov) in
  let set_tuple = Array.of_list candidates in
  let blue_vtuple = Array.of_list (Vtuple.Set.elements prov.Provenance.bad) in
  let blue_index =
    Array.to_seq blue_vtuple |> Seq.mapi (fun i vt -> (vt, i)) |> Vtuple.Map.of_seq
  in
  let touched_preserved =
    List.fold_left
      (fun acc st ->
        Vtuple.Set.union acc
          (Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.preserved))
      Vtuple.Set.empty candidates
  in
  let red_vtuple = Array.of_list (Vtuple.Set.elements touched_preserved) in
  let red_index =
    Array.to_seq red_vtuple |> Seq.mapi (fun i vt -> (vt, i)) |> Vtuple.Map.of_seq
  in
  let members st =
    let vts = Provenance.vtuples_containing prov st in
    Vtuple.Set.fold
      (fun vt (reds, blues) ->
        match Vtuple.Map.find_opt vt blue_index with
        | Some b -> (reds, Setcover.Iset.add b blues)
        | None -> (
          match Vtuple.Map.find_opt vt red_index with
          | Some r -> (Setcover.Iset.add r reds, blues)
          | None -> (reds, blues)))
      vts
      (Setcover.Iset.empty, Setcover.Iset.empty)
  in
  let weights = prov.Provenance.problem.Problem.weights in
  let red_weights = Array.map (Weights.get weights) red_vtuple in
  let blue_weights = Array.map (Weights.get weights) blue_vtuple in
  (set_tuple, red_vtuple, blue_vtuple, red_weights, blue_weights, members)

let to_red_blue prov =
  let set_tuple, red_vtuple, blue_vtuple, red_weights, _, members = skeleton prov in
  let sets =
    Array.to_list set_tuple
    |> List.map (fun st ->
           let reds, blues = members st in
           { Setcover.Red_blue.label = R.Stuple.to_string st; red = reds; blue = blues })
  in
  let instance =
    Setcover.Red_blue.make ~red_weights ~num_blue:(Array.length blue_vtuple) sets
  in
  { instance; set_tuple; red_vtuple; blue_vtuple }

let deletion_of_red_blue (m : rbsc) (sol : Setcover.Red_blue.solution) =
  List.fold_left
    (fun acc i -> R.Stuple.Set.add m.set_tuple.(i) acc)
    R.Stuple.Set.empty sol.Setcover.Red_blue.chosen

let to_pos_neg prov =
  let set_tuple, neg_vtuple, pos_vtuple, neg_weights, pos_weights, members = skeleton prov in
  let sets =
    Array.to_list set_tuple
    |> List.map (fun st ->
           let negs, poss = members st in
           { Setcover.Pos_neg.label = R.Stuple.to_string st; pos = poss; neg = negs })
  in
  let instance = Setcover.Pos_neg.make ~pos_weights ~neg_weights sets in
  { instance; set_tuple; neg_vtuple; pos_vtuple }

let deletion_of_pos_neg (m : pnpsc) (sol : Setcover.Pos_neg.solution) =
  List.fold_left
    (fun acc i -> R.Stuple.Set.add m.set_tuple.(i) acc)
    R.Stuple.Set.empty sol.Setcover.Pos_neg.chosen
