module R = Relational

type plan = {
  deletions : R.Stuple.Set.t;
  insertions : R.Stuple.Set.t;
  lost_good : Vtuple.Set.t;
  spurious : Vtuple.Set.t;
  cost : float;
  repaired : R.Instance.t;
}

type error =
  | Deletion_failed of string
  | Insertion_failed of string
  | Conflicting of string

let pp_error ppf = function
  | Deletion_failed m -> Format.fprintf ppf "deletion half failed: %s" m
  | Insertion_failed m -> Format.fprintf ppf "insertion half failed: %s" m
  | Conflicting m -> Format.fprintf ppf "conflicting plan: %s" m

let solve ~db ~queries ~wrong ~missing ?(weights = Weights.uniform) () =
  (* half 1: deletions, exact, minimum weighted view side-effect *)
  let del_result =
    if List.for_all (fun (_, ts) -> ts = []) wrong then
      Ok (R.Stuple.Set.empty, Vtuple.Set.empty)
    else
      match
        Problem.make ~db ~queries ~deletions:wrong ~weights
          ~allow_non_key_preserving:true ()
      with
      | exception Invalid_argument m -> Error (Deletion_failed m)
      | problem -> (
        match Brute.solve_ground_truth problem with
        | Some r -> Ok (r.Brute.deletion, r.Brute.outcome.Side_effect.side_effect)
        | None -> Error (Deletion_failed "infeasible")
        | exception Invalid_argument m -> Error (Deletion_failed m))
  in
  match del_result with
  | Error e -> Error e
  | Ok (deletions, lost_good) -> (
    let db_after_del = R.Instance.delete db deletions in
    (* half 2: insertions on the repaired database, one target at a time *)
    let rec insert_all db_cur acc_ins acc_spurious = function
      | [] -> Ok (db_cur, acc_ins, acc_spurious)
      | (qname, target) :: rest -> (
        match
          Problem.make ~db:db_cur ~queries ~deletions:[] ~weights
            ~allow_non_key_preserving:true ()
        with
        | exception Invalid_argument m -> Error (Insertion_failed m)
        | base -> (
          match Insertion.solve base ~query:qname ~target with
          | Error Insertion.Already_present ->
            insert_all db_cur acc_ins acc_spurious rest
          | Error e -> Error (Insertion_failed (Format.asprintf "%a" Insertion.pp_error e))
          | Ok r ->
            let db_next =
              R.Stuple.Set.fold
                (fun st acc -> R.Instance.add_stuple acc st)
                r.Insertion.insertions db_cur
            in
            insert_all db_next
              (R.Stuple.Set.union acc_ins r.Insertion.insertions)
              (Vtuple.Set.union acc_spurious r.Insertion.new_views)
              rest))
    in
    match insert_all db_after_del R.Stuple.Set.empty Vtuple.Set.empty missing with
    | Error e -> Error e
    | Ok (repaired, insertions, spurious) ->
      (* consistency: no wrong answer may be derivable again *)
      let resurrection =
        List.concat_map
          (fun (qname, ts) ->
            match List.find_opt (fun (q : Cq.Query.t) -> q.name = qname) queries with
            | None -> []
            | Some q ->
              let view = Cq.Eval.evaluate repaired q in
              List.filter (fun t -> R.Tuple.Set.mem t view) ts)
          wrong
      in
      (match resurrection with
      | t :: _ ->
        Error
          (Conflicting
             (Format.asprintf "insertion re-derives removed answer %a" R.Tuple.pp t))
      | [] ->
        let cost = Weights.total weights lost_good +. Weights.total weights spurious in
        Ok { deletions; insertions; lost_good; spurious; cost; repaired }))
