(** The companion {e source side-effect} problem (Tables II–III; Buneman
    et al. [6], Cong et al. [15]): eliminate all of [ΔV] while deleting as
    {e few source tuples} as possible (weighted by [tuple_weight]),
    regardless of damage to the views.

    With key-preserving queries this is exactly weighted Set Cover over
    the bad view tuples (sets = candidate source tuples), so it is
    NP-hard for multiple queries but greedily [H_n]-approximable, and
    trivially polynomial when [ΔV] is a single tuple (any witness tuple
    of minimum weight). Experiment E12 measures all three. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;   (** view-side-effect bookkeeping, for contrast *)
  source_cost : float;             (** the objective: total weight of [deletion] *)
}

(** Exact optimum (branch-and-bound over the set-cover image).
    [tuple_weight] defaults to 1 per tuple. *)
val solve_exact :
  ?node_budget:int ->
  ?tuple_weight:(Relational.Stuple.t -> float) ->
  Provenance.t ->
  result option

(** Greedy H_n-approximation. *)
val solve_greedy :
  ?tuple_weight:(Relational.Stuple.t -> float) -> Provenance.t -> result option

(** The single-deletion polynomial case: with [‖ΔV‖ = 1], pick the
    lightest witness tuple. [Error] with the deletion count otherwise. *)
val solve_single :
  ?tuple_weight:(Relational.Stuple.t -> float) ->
  Provenance.t ->
  (result, int) Stdlib.result
