(** Human-readable propagation reports: for each intended deletion, which
    chosen source tuples realize it; for each side-effect, which chosen
    tuples cause it. Used by the CLI and the cleaning examples
    (the annotation application of §V). *)

type coverage = {
  bad : Vtuple.t;
  killers : Relational.Stuple.t list;  (** witness ∩ ΔD; empty = not realized *)
}

type damage = {
  lost : Vtuple.t;                      (** a preserved view tuple eliminated *)
  cause : Relational.Stuple.t list;     (** witness ∩ ΔD *)
}

type t = {
  outcome : Side_effect.outcome;
  coverage : coverage list;             (** one entry per ΔV tuple *)
  damage : damage list;                 (** one entry per side-effect tuple *)
}

val explain : Provenance.t -> Relational.Stuple.Set.t -> t

val pp : Format.formatter -> t -> unit
