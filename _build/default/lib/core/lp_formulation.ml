module R = Relational

type t = {
  lp : Lp.Problem.t;
  tuple_var : R.Stuple.t array;
  preserved_var : Vtuple.t array;
}

let build (prov : Provenance.t) =
  let tuple_var = Array.of_list (R.Stuple.Set.elements (Provenance.candidates prov)) in
  let nt = Array.length tuple_var in
  let tuple_index =
    Array.to_seq tuple_var |> Seq.mapi (fun i st -> (R.Stuple.to_string st, i)) |> Hashtbl.of_seq
  in
  let touched =
    Array.fold_left
      (fun acc st ->
        Vtuple.Set.union acc
          (Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.preserved))
      Vtuple.Set.empty tuple_var
  in
  let preserved_var = Array.of_list (Vtuple.Set.elements touched) in
  let np = Array.length preserved_var in
  let nvars = nt + np in
  let weights = prov.Provenance.problem.Problem.weights in
  let objective = Array.make nvars 0.0 in
  Array.iteri (fun i vt -> objective.(nt + i) <- Weights.get weights vt) preserved_var;
  let witness_indices vt =
    R.Stuple.Set.fold
      (fun st acc ->
        match Hashtbl.find_opt tuple_index (R.Stuple.to_string st) with
        | Some i -> i :: acc
        | None -> acc)
      (Provenance.witness_of prov vt)
      []
  in
  let bad_constraints =
    Vtuple.Set.elements prov.Provenance.bad
    |> List.map (fun vt ->
           let coeffs = Array.make nvars 0.0 in
           List.iter (fun i -> coeffs.(i) <- 1.0) (witness_indices vt);
           {
             Lp.Problem.coeffs;
             op = Lp.Problem.Ge;
             rhs = 1.0;
             cname = Format.asprintf "kill(%a)" Vtuple.pp vt;
           })
  in
  let preserved_constraints =
    Array.to_list (Array.mapi (fun i vt -> (i, vt)) preserved_var)
    |> List.map (fun (i, vt) ->
           let idx = witness_indices vt in
           let coeffs = Array.make nvars 0.0 in
           coeffs.(nt + i) <- float_of_int (List.length idx);
           List.iter (fun j -> coeffs.(j) <- coeffs.(j) -. 1.0) idx;
           {
             Lp.Problem.coeffs;
             op = Lp.Problem.Ge;
             rhs = 0.0;
             cname = Format.asprintf "lose(%a)" Vtuple.pp vt;
           })
  in
  let var_names =
    Array.append
      (Array.map (fun st -> "y:" ^ R.Stuple.to_string st) tuple_var)
      (Array.map (fun vt -> "x:" ^ Vtuple.to_string vt) preserved_var)
  in
  let lp =
    Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective
      ~constraints:(bad_constraints @ preserved_constraints)
      ~var_names ()
  in
  { lp; tuple_var; preserved_var }

let lower_bound prov =
  let f = build prov in
  match Lp.Simplex.solve f.lp with
  | Lp.Simplex.Optimal { value; _ } -> Some value
  | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> None

let point_of_deletion (f : t) (prov : Provenance.t) deletion =
  let nt = Array.length f.tuple_var in
  let np = Array.length f.preserved_var in
  let x = Array.make (nt + np) 0.0 in
  Array.iteri
    (fun i st -> if R.Stuple.Set.mem st deletion then x.(i) <- 1.0)
    f.tuple_var;
  Array.iteri
    (fun i vt ->
      let lost =
        not
          (R.Stuple.Set.is_empty
             (R.Stuple.Set.inter (Provenance.witness_of prov vt) deletion))
      in
      if lost then x.(nt + i) <- 1.0)
    f.preserved_var;
  x
