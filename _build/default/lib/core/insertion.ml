module R = Relational

type result = {
  insertions : R.Stuple.Set.t;
  new_views : Vtuple.Set.t;
  side_effect : float;
}

type objective =
  | Fewest_insertions
  | Fewest_new_views

type error =
  | Already_present
  | Unknown_query of string
  | Arity_mismatch
  | Key_conflict
  | Too_many_assignments of int

let pp_error ppf = function
  | Already_present -> Format.fprintf ppf "the target tuple is already in the view"
  | Unknown_query q -> Format.fprintf ppf "unknown query %s" q
  | Arity_mismatch -> Format.fprintf ppf "target arity differs from the query head"
  | Key_conflict ->
    Format.fprintf ppf
      "every derivation needs an insertion clashing with an existing key"
  | Too_many_assignments n ->
    Format.fprintf ppf "assignment space exceeds the budget (%d)" n

(* head unification: target values against head terms *)
let head_assignment (q : Cq.Query.t) target =
  if List.length q.head <> R.Tuple.arity target then None
  else
    let rec go i env = function
      | [] -> Some env
      | term :: rest -> (
        let value = R.Tuple.get target i in
        match term with
        | Cq.Term.Const c ->
          if R.Value.equal c value then go (i + 1) env rest else None
        | Cq.Term.Var v -> (
          match List.assoc_opt v env with
          | Some value' ->
            if R.Value.equal value value' then go (i + 1) env rest else None
          | None -> go (i + 1) ((v, value) :: env) rest))
    in
    go 0 [] q.head

let active_domain db =
  R.Instance.fold
    (fun st acc ->
      List.fold_left (fun acc v -> v :: acc) acc (R.Tuple.to_list st.R.Stuple.tuple))
    db []
  |> List.sort_uniq R.Value.compare

(* instantiate the body under a full assignment; None when a needed
   insertion conflicts with an existing key *)
let required_insertions db (q : Cq.Query.t) env =
  let value = function
    | Cq.Term.Const c -> c
    | Cq.Term.Var v -> List.assoc v env
  in
  let schema = R.Instance.schema db in
  let rec go acc = function
    | [] -> Some acc
    | (atom : Cq.Atom.t) :: rest ->
      let tuple = R.Tuple.of_list (List.map value (Array.to_list atom.args)) in
      let rel = R.Instance.relation db atom.rel in
      if R.Relation.mem rel tuple then go acc rest
      else begin
        let s = R.Schema.Db.find schema atom.rel in
        match R.Relation.find_by_key rel (R.Schema.key_of_tuple s tuple) with
        | Some _ -> None (* key exists with different fields *)
        | None -> go (R.Stuple.Set.add (R.Stuple.make atom.rel tuple) acc) rest
      end
  in
  go R.Stuple.Set.empty q.body

let solve ?(objective = Fewest_new_views) ?(max_assignments = 200_000)
    (problem : Problem.t) ~query ~target =
  match List.find_opt (fun (q : Cq.Query.t) -> q.name = query) problem.Problem.queries with
  | None -> Error (Unknown_query query)
  | Some q -> (
    let db = problem.Problem.db in
    if R.Tuple.arity target <> Cq.Query.arity q then Error Arity_mismatch
    else if R.Tuple.Set.mem target (Cq.Eval.evaluate db q) then Error Already_present
    else
      match head_assignment q target with
      | None -> Error Arity_mismatch
      | Some head_env ->
        let existentials = Cq.Term.Vars.elements (Cq.Query.existential_vars q) in
        let domain = R.Value.fresh () :: active_domain db in
        let space = ref 1 in
        List.iter (fun _ -> space := !space * List.length domain) existentials;
        if !space > max_assignments then Error (Too_many_assignments max_assignments)
        else begin
          (* enumerate assignments of existential variables *)
          let weights = problem.Problem.weights in
          let old_views =
            List.map (fun (qq : Cq.Query.t) -> (qq, Cq.Eval.evaluate db qq))
              problem.Problem.queries
          in
          let score_of insertions =
            let db' = R.Stuple.Set.fold (fun st acc -> R.Instance.add_stuple acc st) insertions db in
            let new_views =
              List.fold_left
                (fun acc ((qq : Cq.Query.t), old_view) ->
                  let now = Cq.Eval.evaluate db' qq in
                  R.Tuple.Set.fold
                    (fun t acc ->
                      if qq.name = q.Cq.Query.name && R.Tuple.equal t target then acc
                      else Vtuple.Set.add (Vtuple.make qq.name t) acc)
                    (R.Tuple.Set.diff now old_view)
                    acc)
                Vtuple.Set.empty old_views
            in
            (new_views, Weights.total weights new_views)
          in
          let best = ref None in
          let better (ins_a, se_a) (ins_b, se_b) =
            match objective with
            | Fewest_insertions -> (ins_a, se_a) < (ins_b, se_b)
            | Fewest_new_views -> (se_a, ins_a) < (se_b, ins_b)
          in
          let saw_key_conflict = ref false in
          let rec enumerate env = function
            | [] -> (
              match required_insertions db q env with
              | None -> saw_key_conflict := true
              | Some insertions ->
                let new_views, se = score_of insertions in
                let key = (R.Stuple.Set.cardinal insertions, se) in
                let r = { insertions; new_views; side_effect = se } in
                (match !best with
                | Some (bkey, _) when not (better key bkey) -> ()
                | _ -> best := Some (key, r)))
            | v :: rest ->
              List.iter (fun value -> enumerate ((v, value) :: env) rest) domain
          in
          enumerate head_env existentials;
          match !best with
          | Some (_, r) -> Ok r
          | None -> Error (if !saw_key_conflict then Key_conflict else Key_conflict)
        end)
