(** Resilience (Freire et al. [24], the paper's Table II–III context):
    the minimum number of source tuples whose deletion empties the query
    result. It is the extreme case of source side-effect — [ΔV] = the
    whole view — and inherits the triad dichotomy: polynomial for
    triad-free sj-free queries, NP-hard with a triad. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  resilience : int;   (** |deletion| *)
}

(** Exact resilience of one key-preserving query (unique witnesses).
    [None] when the view is already empty... never: an empty view has
    resilience 0, returned as such. *)
val solve_exact :
  ?node_budget:int -> Relational.Instance.t -> Cq.Query.t -> result

(** Greedy upper bound (H_n-approximation via set cover). *)
val solve_greedy : Relational.Instance.t -> Cq.Query.t -> result

(** General semantics (multiple witnesses allowed), by subset enumeration
    over tuples occurring in some witness. [max_candidates] defaults to
    20; raises [Invalid_argument] beyond. *)
val solve_ground_truth :
  ?max_candidates:int -> Relational.Instance.t -> Cq.Query.t -> result
