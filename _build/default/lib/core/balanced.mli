(** Balanced deletion propagation (§III, Thm 2; §IV.A, Lemma 1).

    Instead of forcing every [ΔV] tuple out, the balanced objective
    trades surviving bad tuples against lost good ones:
    [min weight(ΔV kept) + weight(preserved lost)]. Empty deletion is
    always feasible; the question is purely one of optimization. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;   (** [outcome.balanced_cost] is the objective *)
}

(** Exact optimum through the Positive-Negative Partial Set Cover
    reduction (branch-and-bound; exponential). *)
val solve_exact : ?node_budget:int -> Provenance.t -> result

(** Lemma 1's general approximation: reduce to PNPSC, then to Red-Blue
    Set Cover (Miettinen), solve with LowDeg/greedy, map back. Ratio
    [2·sqrt(l·(‖V‖+‖ΔV‖)·log ‖ΔV‖)]. *)
val solve_general : Provenance.t -> result

(** Exact DP on pivot forests (balanced variant of Algorithm 4). *)
val solve_dp : Provenance.t -> (result, Dp_tree.error) Stdlib.result

(** The balanced variant of the tree primal-dual ("similar results will
    be shown for the balanced version", §IV.C): run {!Primal_dual} on the
    standard objective, then an improvement pass — a deletion is dropped
    whenever the bad tuples only it covers weigh less than the preserved
    tuples it destroys (keeping them is then the better trade). Always at
    least as good as both the primal-dual plan and the empty plan under
    the balanced objective; exactness is not claimed (compare
    {!solve_exact}). *)
val solve_tree : Provenance.t -> result

(** Lemma 1's claimed ratio for this instance. *)
val bound : Problem.t -> float
