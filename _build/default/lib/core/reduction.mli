(** Cost-preserving reductions between deletion propagation and the set
    cover problems (§IV.A).

    Forward direction (used by the approximation algorithms):
    - one {e set} per candidate source tuple (tuples occurring in some bad
      witness — deleting anything else never helps),
    - one {e blue}/{e positive} element per [ΔV] tuple,
    - one {e red}/{e negative} element per preserved view tuple whose
      witness meets a candidate (weights carried over).
    A chosen sub-collection maps back to deleting the corresponding
    tuples; costs agree exactly, so approximation ratios transfer. *)

type rbsc = {
  instance : Setcover.Red_blue.t;
  set_tuple : Relational.Stuple.t array;  (** set index -> source tuple *)
  red_vtuple : Vtuple.t array;            (** red id -> preserved view tuple *)
  blue_vtuple : Vtuple.t array;           (** blue id -> bad view tuple *)
}

(** Standard objective -> Red-Blue Set Cover. *)
val to_red_blue : Provenance.t -> rbsc

val deletion_of_red_blue : rbsc -> Setcover.Red_blue.solution -> Relational.Stuple.Set.t

type pnpsc = {
  instance : Setcover.Pos_neg.t;
  set_tuple : Relational.Stuple.t array;
  neg_vtuple : Vtuple.t array;
  pos_vtuple : Vtuple.t array;
}

(** Balanced objective -> Positive-Negative Partial Set Cover. *)
val to_pos_neg : Provenance.t -> pnpsc

val deletion_of_pos_neg : pnpsc -> Setcover.Pos_neg.solution -> Relational.Stuple.Set.t
