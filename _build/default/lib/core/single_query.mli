(** The single-query polynomial case (Cong et al. [15], Table IV).

    For a single key-preserving query and a {e single} view-tuple
    deletion, the optimum is found in polynomial time: the unique witness
    lists every way to kill the tuple; pick the witness tuple whose
    preserved-weight is minimal. With multiple deletions on one query the
    problem is already the multi-tuple case of [32]; [solve] then refuses
    and the caller falls back to the approximations — experiment E9
    exercises exactly this boundary. *)

type result = {
  deletion : Relational.Stuple.Set.t;
  outcome : Side_effect.outcome;
}

type error =
  | Not_single_query of int     (** the instance has this many queries *)
  | Not_single_deletion of int  (** ΔV has this many tuples *)

val solve : Provenance.t -> (result, error) Stdlib.result

val pp_error : Format.formatter -> error -> unit

(** Greedy extension used as a baseline on multi-deletion instances:
    kill bad tuples one at a time, each by its cheapest witness tuple
    given what is already deleted. Feasible but unboundedly suboptimal —
    the gap is part of experiment E9. *)
val solve_greedy_multi : Provenance.t -> result
