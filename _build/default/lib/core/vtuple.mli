(** View tuples: an answer tuple tagged with the query that produced it.

    With multiple views (the paper's setting), equal tuples in different
    views are distinct objects — [ΔV] may name one and not the other. *)

type t = {
  query : string;
  tuple : Relational.Tuple.t;
}

val make : string -> Relational.Tuple.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t
