(** Instance statistics: the structural quantities the paper's bounds are
    stated in (l, ‖V‖, ‖ΔV‖, witness widths, tuple degrees) plus the
    case classifications that pick the right solver. Printed by
    [deleprop classify --stats] and logged by the experiment harness. *)

type t = {
  num_relations : int;
  db_size : int;
  num_queries : int;
  max_arity : int;          (** the paper's l *)
  view_size : int;          (** ‖V‖ *)
  deletion_size : int;      (** ‖ΔV‖ *)
  num_candidates : int;     (** tuples occurring in some bad witness *)
  witness_min : int;
  witness_max : int;
  witness_avg : float;
  preserved_degree_max : int;  (** max preserved view tuples through one tuple *)
  forest_case : bool;       (** dual hypergraph is a forest of hypertrees *)
  pivot_case : bool;        (** Algorithm 4 applies *)
  claim1_bound : float;
  thm4_bound : float;
}

val compute : Provenance.t -> t

val pp : Format.formatter -> t -> unit

(** CSV header/row for experiment logs. *)
val csv_header : string

val to_csv : t -> string
