module R = Relational

type result = {
  deletion : R.Stuple.Set.t;
  resilience : int;
}

let empty_result = { deletion = R.Stuple.Set.empty; resilience = 0 }

let problem_of db (q : Cq.Query.t) =
  let view = R.Tuple.Set.elements (Cq.Eval.evaluate db q) in
  if view = [] then None
  else
    Some
      (Problem.make ~db ~queries:[ q ] ~deletions:[ (q.name, view) ]
         ~allow_non_key_preserving:true ())

let of_source prov solve =
  match solve prov with
  | Some (r : Source_side_effect.result) ->
    { deletion = r.Source_side_effect.deletion;
      resilience = R.Stuple.Set.cardinal r.Source_side_effect.deletion }
  | None -> assert false (* deleting every witness tuple is always feasible *)

let solve_exact ?node_budget db q =
  match problem_of db q with
  | None -> empty_result
  | Some p ->
    of_source (Provenance.build p) (Source_side_effect.solve_exact ?node_budget)

let solve_greedy db q =
  match problem_of db q with
  | None -> empty_result
  | Some p -> of_source (Provenance.build p) (fun prov -> Source_side_effect.solve_greedy prov)

let solve_ground_truth ?(max_candidates = 20) db (q : Cq.Query.t) =
  match problem_of db q with
  | None -> empty_result
  | Some p ->
    (* candidates: any tuple in any witness *)
    let prov = Cq.Eval.provenance db q in
    let candidates =
      R.Tuple.Map.fold
        (fun _ witnesses acc ->
          List.fold_left
            (fun acc w -> R.Stuple.Set.union acc (Cq.Eval.witness_set w))
            acc witnesses)
        prov R.Stuple.Set.empty
      |> R.Stuple.Set.elements |> Array.of_list
    in
    let n = Array.length candidates in
    if n > max_candidates then
      invalid_arg
        (Printf.sprintf "Resilience.solve_ground_truth: %d candidates exceed %d" n
           max_candidates);
    let best = ref None in
    for mask = 0 to (1 lsl n) - 1 do
      let dd = ref R.Stuple.Set.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then dd := R.Stuple.Set.add candidates.(i) !dd
      done;
      let o = Side_effect.eval_ground_truth p !dd in
      if o.Side_effect.feasible then
        match !best with
        | Some b when R.Stuple.Set.cardinal b <= R.Stuple.Set.cardinal !dd -> ()
        | _ -> best := Some !dd
    done;
    (match !best with
    | Some dd -> { deletion = dd; resilience = R.Stuple.Set.cardinal dd }
    | None -> assert false)
