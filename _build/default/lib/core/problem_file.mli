(** Whole-instance text format: database, queries, deletions and weights
    in one file, so a propagation problem is a single shareable artifact.

    {v
    # schema + facts (Relational.Serial syntax)
    rel T1(AuName*, Journal)
    T1(John, TKDE)
    rel T2(Journal*, Topic)
    T2(TKDE, XML)

    # views (Cq.Parser syntax, prefixed)
    query Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)

    # intended deletions
    delete Q4(John, TKDE, XML)

    # optional preservation weights (default 1)
    weight Q4(John, TKDE, CUBE) 5
    v} *)

exception Parse_error of int * string

val of_string : ?allow_non_key_preserving:bool -> string -> Problem.t
val of_file : ?allow_non_key_preserving:bool -> string -> Problem.t

(** Render a problem back to the format (weight overrides included). *)
val to_string : Problem.t -> string

val to_file : string -> Problem.t -> unit
