(* String-keyed maps, shared by the core modules. *)
include Stdlib.Map.Make (String)
