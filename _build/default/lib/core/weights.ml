type t = {
  default : float;
  overrides : float Vtuple.Map.t;
}

let with_default default = { default; overrides = Vtuple.Map.empty }
let uniform = with_default 1.0

let set w vt x = { w with overrides = Vtuple.Map.add vt x w.overrides }

let of_list ?(default = 1.0) l =
  List.fold_left (fun w (vt, x) -> set w vt x) (with_default default) l

let get w vt = Option.value ~default:w.default (Vtuple.Map.find_opt vt w.overrides)

let default_of w = w.default
let overrides w = Vtuple.Map.bindings w.overrides

let total w s = Vtuple.Set.fold (fun vt acc -> acc +. get w vt) s 0.0

let pp ppf w =
  Format.fprintf ppf "default %g%a" w.default
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (vt, x) ->
         Format.fprintf ppf ", %a -> %g" Vtuple.pp vt x))
    (Vtuple.Map.bindings w.overrides)
