module R = Relational
module SC = Setcover

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  source_cost : float;
}

let default_weight _ = 1.0

let result_of prov tuple_weight deletion =
  {
    deletion;
    outcome = Side_effect.eval prov deletion;
    source_cost = R.Stuple.Set.fold (fun st acc -> acc +. tuple_weight st) deletion 0.0;
  }

(* set-cover image: universe = bad view tuples, one set per candidate
   source tuple containing the bad tuples its deletion kills *)
let to_cover (prov : Provenance.t) tuple_weight =
  let candidates = Array.of_list (R.Stuple.Set.elements (Provenance.candidates prov)) in
  let bad = Array.of_list (Vtuple.Set.elements prov.Provenance.bad) in
  let bad_index =
    Array.to_seq bad |> Seq.mapi (fun i vt -> (Vtuple.to_string vt, i)) |> Hashtbl.of_seq
  in
  let sets =
    Array.to_list candidates
    |> List.map (fun st ->
           let elements =
             Vtuple.Set.fold
               (fun vt acc ->
                 match Hashtbl.find_opt bad_index (Vtuple.to_string vt) with
                 | Some i -> SC.Iset.add i acc
                 | None -> acc)
               (Provenance.vtuples_containing prov st)
               SC.Iset.empty
           in
           { SC.Weighted_cover.label = R.Stuple.to_string st; elements })
  in
  let weights = Array.map tuple_weight candidates in
  (SC.Weighted_cover.make ~universe:(Array.length bad) ~weights sets, candidates)

let deletion_of candidates (sol : SC.Weighted_cover.solution) =
  List.fold_left
    (fun acc i -> R.Stuple.Set.add candidates.(i) acc)
    R.Stuple.Set.empty sol.SC.Weighted_cover.chosen

let solve_exact ?node_budget ?(tuple_weight = default_weight) prov =
  let cover, candidates = to_cover prov tuple_weight in
  SC.Weighted_cover.solve_exact ?node_budget cover
  |> Option.map (fun sol -> result_of prov tuple_weight (deletion_of candidates sol))

let solve_greedy ?(tuple_weight = default_weight) prov =
  let cover, candidates = to_cover prov tuple_weight in
  SC.Weighted_cover.solve_greedy cover
  |> Option.map (fun sol -> result_of prov tuple_weight (deletion_of candidates sol))

let solve_single ?(tuple_weight = default_weight) (prov : Provenance.t) =
  let n = Vtuple.Set.cardinal prov.Provenance.bad in
  if n <> 1 then Error n
  else
    let vt = Vtuple.Set.choose prov.Provenance.bad in
    let lightest =
      R.Stuple.Set.fold
        (fun st best ->
          match best with
          | Some (_, w) when w <= tuple_weight st -> best
          | _ -> Some (st, tuple_weight st))
        (Provenance.witness_of prov vt)
        None
    in
    match lightest with
    | Some (st, _) -> Ok (result_of prov tuple_weight (R.Stuple.Set.singleton st))
    | None -> assert false (* witnesses are non-empty *)
