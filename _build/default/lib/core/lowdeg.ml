module R = Relational

let src = Logs.Src.create "deleprop.lowdeg" ~doc:"LowDegTreeVSE (Algorithms 2-3)"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
  tau : int;
  pruned_wide : int;
}

let preserved_degree (prov : Provenance.t) st =
  Vtuple.Set.cardinal
    (Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.preserved)

let wide_preserved (prov : Provenance.t) =
  let v = float_of_int (Problem.view_size prov.Provenance.problem) in
  let threshold = sqrt v in
  Vtuple.Set.filter
    (fun vt ->
      float_of_int (R.Stuple.Set.cardinal (Provenance.witness_of prov vt)) > threshold)
    prov.Provenance.preserved

let solve_with_tau ?(prune_wide = true) (prov : Provenance.t) ~tau =
  let deletable =
    R.Instance.fold
      (fun st acc -> if preserved_degree prov st <= tau then R.Stuple.Set.add st acc else acc)
      prov.Provenance.problem.Problem.db R.Stuple.Set.empty
  in
  let ignored = if prune_wide then wide_preserved prov else Vtuple.Set.empty in
  Log.debug (fun m ->
      m "tau=%d: %d deletable tuples, %d wide preserved pruned" tau
        (R.Stuple.Set.cardinal deletable)
        (Vtuple.Set.cardinal ignored));
  match Primal_dual.solve_restricted prov ~deletable ~ignored_preserved:ignored with
  | None ->
    Log.debug (fun m -> m "tau=%d infeasible" tau);
    None
  | Some pd ->
    Some
      {
        deletion = pd.Primal_dual.deletion;
        outcome = pd.Primal_dual.outcome;
        tau;
        pruned_wide = Vtuple.Set.cardinal ignored;
      }

let solve ?(prune_wide = true) (prov : Provenance.t) =
  if Vtuple.Set.is_empty prov.Provenance.bad then
    {
      deletion = R.Stuple.Set.empty;
      outcome = Side_effect.eval prov R.Stuple.Set.empty;
      tau = 0;
      pruned_wide = 0;
    }
  else begin
  (* sweeping the distinct preserved-degrees of the candidate tuples is
     equivalent to sweeping 1..|R| *)
  let taus =
    R.Stuple.Set.fold
      (fun st acc -> preserved_degree prov st :: acc)
      (Provenance.candidates prov) []
    |> List.sort_uniq Int.compare
  in
  let best =
    List.fold_left
      (fun best tau ->
        match solve_with_tau ~prune_wide prov ~tau with
        | None -> best
        | Some r -> (
          match best with
          | Some b when b.outcome.Side_effect.cost <= r.outcome.Side_effect.cost -> best
          | _ -> Some r))
      None taus
  in
  match best with
  | Some r -> r
  | None ->
    (* cannot happen: the max preserved-degree bars no candidate *)
    assert false
  end

let bound (problem : Problem.t) = 2.0 *. sqrt (float_of_int (Problem.view_size problem))
