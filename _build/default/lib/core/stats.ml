module R = Relational

type t = {
  num_relations : int;
  db_size : int;
  num_queries : int;
  max_arity : int;
  view_size : int;
  deletion_size : int;
  num_candidates : int;
  witness_min : int;
  witness_max : int;
  witness_avg : float;
  preserved_degree_max : int;
  forest_case : bool;
  pivot_case : bool;
  claim1_bound : float;
  thm4_bound : float;
}

let compute (prov : Provenance.t) =
  let problem = prov.Provenance.problem in
  let witness_sizes =
    Vtuple.Map.fold
      (fun _ w acc -> R.Stuple.Set.cardinal w :: acc)
      prov.Provenance.witness []
  in
  let wmin = List.fold_left min max_int witness_sizes in
  let wmax = List.fold_left max 0 witness_sizes in
  let wavg =
    match witness_sizes with
    | [] -> 0.0
    | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  let degree_max =
    R.Instance.fold
      (fun st acc ->
        let d =
          Vtuple.Set.cardinal
            (Vtuple.Set.inter (Provenance.vtuples_containing prov st) prov.Provenance.preserved)
        in
        max acc d)
      problem.Problem.db 0
  in
  {
    num_relations = List.length (R.Schema.Db.relations (R.Instance.schema problem.Problem.db));
    db_size = R.Instance.size problem.Problem.db;
    num_queries = List.length problem.Problem.queries;
    max_arity = Problem.max_arity problem;
    view_size = Problem.view_size problem;
    deletion_size = Problem.deletion_size problem;
    num_candidates = R.Stuple.Set.cardinal (Provenance.candidates prov);
    witness_min = (if witness_sizes = [] then 0 else wmin);
    witness_max = wmax;
    witness_avg = wavg;
    preserved_degree_max = degree_max;
    forest_case = Hypergraph.Dual.is_forest_case problem.Problem.queries;
    pivot_case = Dp_tree.applicable prov;
    claim1_bound = General_approx.bound problem;
    thm4_bound = Lowdeg.bound problem;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>relations: %d, tuples: %d, queries: %d@ l (max arity): %d, ||V||: %d, ||ΔV||: %d@ \
     candidates: %d, witness size: %d..%d (avg %.1f), max preserved degree: %d@ \
     forest case: %b, pivot case: %b@ Claim 1 bound: %.1f, Thm 4 bound: %.1f@]"
    s.num_relations s.db_size s.num_queries s.max_arity s.view_size s.deletion_size
    s.num_candidates s.witness_min s.witness_max s.witness_avg s.preserved_degree_max
    s.forest_case s.pivot_case s.claim1_bound s.thm4_bound

let csv_header =
  "num_relations,db_size,num_queries,max_arity,view_size,deletion_size,num_candidates,\
   witness_min,witness_max,witness_avg,preserved_degree_max,forest_case,pivot_case,\
   claim1_bound,thm4_bound"

let to_csv s =
  Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d,%d,%.3f,%d,%b,%b,%.3f,%.3f" s.num_relations
    s.db_size s.num_queries s.max_arity s.view_size s.deletion_size s.num_candidates
    s.witness_min s.witness_max s.witness_avg s.preserved_degree_max s.forest_case
    s.pivot_case s.claim1_bound s.thm4_bound
