module R = Relational

type result = {
  deletion : R.Stuple.Set.t;
  outcome : Side_effect.outcome;
}

type error =
  | Not_single_query of int
  | Not_single_deletion of int

let pp_error ppf = function
  | Not_single_query n -> Format.fprintf ppf "instance has %d queries, not 1" n
  | Not_single_deletion n -> Format.fprintf ppf "ΔV has %d tuples, not 1" n

let result_of prov deletion =
  { deletion; outcome = Side_effect.eval prov deletion }

(* Cheapest single witness tuple for one bad view tuple, given already
   deleted tuples (whose side-effect is sunk). *)
let cheapest_killer (prov : Provenance.t) already vt =
  let weights = prov.Provenance.problem.Problem.weights in
  let already_killed = Provenance.kills prov already in
  R.Stuple.Set.fold
    (fun st best ->
      let extra =
        Vtuple.Set.fold
          (fun v acc ->
            if
              Vtuple.Set.mem v prov.Provenance.preserved
              && not (Vtuple.Set.mem v already_killed)
            then acc +. Weights.get weights v
            else acc)
          (Provenance.vtuples_containing prov st)
          0.0
      in
      match best with
      | Some (_, w) when w <= extra -> best
      | _ -> Some (st, extra))
    (Provenance.witness_of prov vt)
    None

let solve (prov : Provenance.t) =
  let nq = List.length prov.Provenance.problem.Problem.queries in
  if nq <> 1 then Error (Not_single_query nq)
  else
    let nd = Vtuple.Set.cardinal prov.Provenance.bad in
    if nd <> 1 then Error (Not_single_deletion nd)
    else
      let vt = Vtuple.Set.choose prov.Provenance.bad in
      match cheapest_killer prov R.Stuple.Set.empty vt with
      | Some (st, _) -> Ok (result_of prov (R.Stuple.Set.singleton st))
      | None ->
        (* a view tuple always has a non-empty witness *)
        assert false

let solve_greedy_multi (prov : Provenance.t) =
  let rec go deletion =
    let killed = Provenance.kills prov deletion in
    let remaining = Vtuple.Set.diff prov.Provenance.bad killed in
    if Vtuple.Set.is_empty remaining then deletion
    else
      let vt = Vtuple.Set.min_elt remaining in
      match cheapest_killer prov deletion vt with
      | Some (st, _) -> go (R.Stuple.Set.add st deletion)
      | None -> assert false
  in
  result_of prov (go R.Stuple.Set.empty)
