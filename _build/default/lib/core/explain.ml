module R = Relational

type coverage = {
  bad : Vtuple.t;
  killers : R.Stuple.t list;
}

type damage = {
  lost : Vtuple.t;
  cause : R.Stuple.t list;
}

type t = {
  outcome : Side_effect.outcome;
  coverage : coverage list;
  damage : damage list;
}

let explain (prov : Provenance.t) deletion =
  let outcome = Side_effect.eval prov deletion in
  let hit vt =
    R.Stuple.Set.elements (R.Stuple.Set.inter (Provenance.witness_of prov vt) deletion)
  in
  let coverage =
    Vtuple.Set.elements prov.Provenance.bad
    |> List.map (fun bad -> { bad; killers = hit bad })
  in
  let damage =
    Vtuple.Set.elements outcome.Side_effect.side_effect
    |> List.map (fun lost -> { lost; cause = hit lost })
  in
  { outcome; coverage; damage }

let pp_stuples ppf sts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    R.Stuple.pp ppf sts

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@ " Side_effect.pp t.outcome;
  List.iter
    (fun c ->
      match c.killers with
      | [] -> Format.fprintf ppf "✗ %a survives (no witness tuple deleted)@ " Vtuple.pp c.bad
      | ks -> Format.fprintf ppf "✓ %a removed by %a@ " Vtuple.pp c.bad pp_stuples ks)
    t.coverage;
  List.iter
    (fun d ->
      Format.fprintf ppf "! %a lost collaterally via %a@ " Vtuple.pp d.lost pp_stuples d.cause)
    t.damage;
  Format.fprintf ppf "@]"
