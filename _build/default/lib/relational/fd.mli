(** Functional dependencies over a relation schema.

    The paper's related results extend deletion propagation with FDs
    ("fd-head domination" [30], "fd-induced triads" [24]); this module
    supplies the standard machinery: closure, implication, key
    derivation, satisfaction checking, and minimal covers — enough to
    validate declared keys against FDs and to build FD-aware workloads. *)

type t = {
  lhs : string list;  (** determinant attributes *)
  rhs : string list;  (** dependent attributes *)
}

(** [make ~lhs ~rhs] — attribute lists, duplicates removed. *)
val make : lhs:string list -> rhs:string list -> t

val pp : Format.formatter -> t -> unit

module Attrs : Stdlib.Set.S with type elt = string

(** [closure fds attrs] — the attribute closure [attrs+] under [fds]. *)
val closure : t list -> Attrs.t -> Attrs.t

(** [implies fds fd] — does [fds] logically imply [fd]? *)
val implies : t list -> t -> bool

(** [is_superkey schema fds attrs] — does [attrs+] cover all attributes
    of [schema]? *)
val is_superkey : Schema.t -> t list -> string list -> bool

(** [is_candidate_key schema fds attrs] — a superkey none of whose proper
    subsets is a superkey. *)
val is_candidate_key : Schema.t -> t list -> string list -> bool

(** All candidate keys of the schema under [fds] (exponential in arity;
    schemas here are narrow). *)
val candidate_keys : Schema.t -> t list -> string list list

(** [satisfies rel fd] — no two tuples of [rel] agree on [fd.lhs] but
    disagree on [fd.rhs]. Unknown attributes raise [Invalid_argument]. *)
val satisfies : Relation.t -> t -> bool

(** [violations rel fd] — the offending tuple pairs. *)
val violations : Relation.t -> t -> (Tuple.t * Tuple.t) list

(** A minimal cover: singleton right-hand sides, no redundant FDs, no
    redundant left-hand-side attributes. *)
val minimal_cover : t list -> t list

(** [key_consistent schema fds] — is the schema's declared key a superkey
    under [fds] ∪ {declared key -> all}? Holds trivially when [fds] is
    empty (the declared key is axiomatic); with FDs it checks the
    declaration is not weaker than what the FDs already force. *)
val implied_by_declared_key : Schema.t -> t -> bool
