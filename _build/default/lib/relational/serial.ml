exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let strip_comment s =
  match String.index_opt s '#' with
  | Some i -> String.sub s 0 i
  | None -> s

let split_args s = List.map String.trim (String.split_on_char ',' s)

(* "rel T1(name*, journal)" -> schema *)
let parse_rel_decl lineno body =
  match String.index_opt body '(' with
  | None -> fail lineno "expected '(' in relation declaration"
  | Some i ->
    let name = String.trim (String.sub body 0 i) in
    if name = "" then fail lineno "empty relation name";
    if String.length body = 0 || body.[String.length body - 1] <> ')' then
      fail lineno "expected ')' at end of relation declaration";
    let inner = String.sub body (i + 1) (String.length body - i - 2) in
    let raw_attrs = split_args inner in
    if raw_attrs = [ "" ] then fail lineno "relation needs at least one attribute";
    let attrs, key, _ =
      List.fold_left
        (fun (attrs, key, idx) a ->
          if a = "" then fail lineno "empty attribute name"
          else if a.[String.length a - 1] = '*' then
            (String.sub a 0 (String.length a - 1) :: attrs, idx :: key, idx + 1)
          else (a :: attrs, key, idx + 1))
        ([], [], 0) raw_attrs
    in
    let attrs = List.rev attrs and key = List.rev key in
    if key = [] then fail lineno ("relation " ^ name ^ " declares no key attribute");
    (try Schema.make ~name ~attrs ~key
     with Invalid_argument m -> fail lineno m)

(* "T1(john, tkde)" -> name, tuple *)
let parse_fact lineno body =
  match String.index_opt body '(' with
  | None -> fail lineno "expected '(' in fact"
  | Some i ->
    let name = String.trim (String.sub body 0 i) in
    if String.length body = 0 || body.[String.length body - 1] <> ')' then
      fail lineno "expected ')' at end of fact";
    let inner = String.sub body (i + 1) (String.length body - i - 2) in
    let values = List.map Value.of_string (split_args inner) in
    (name, Tuple.of_list values)

let fact_of_string s = parse_fact 0 (String.trim (strip_comment s))

let instance_of_string s =
  let lines = String.split_on_char '\n' s in
  let _, schemas, facts =
    List.fold_left
      (fun (lineno, schemas, facts) raw ->
        let line = String.trim (strip_comment raw) in
        if line = "" then (lineno + 1, schemas, facts)
        else if String.length line > 4 && String.sub line 0 4 = "rel " then
          let s = parse_rel_decl lineno (String.trim (String.sub line 4 (String.length line - 4))) in
          (lineno + 1, s :: schemas, facts)
        else
          let f = parse_fact lineno line in
          (lineno + 1, schemas, (lineno, f) :: facts))
      (1, [], []) lines
  in
  let db_schema =
    try Schema.Db.of_list (List.rev schemas)
    with Invalid_argument m -> fail 0 m
  in
  List.fold_left
    (fun db (lineno, (name, tuple)) ->
      if not (Schema.Db.mem db_schema name) then
        fail lineno ("fact for undeclared relation " ^ name)
      else
        try Instance.add db name tuple with
        | Relation.Key_violation (r, t1, t2) ->
          fail lineno
            (Format.asprintf "key violation in %s: %a vs %a" r Tuple.pp t1 Tuple.pp t2)
        | Relation.Arity_mismatch (r, want, got) ->
          fail lineno (Printf.sprintf "arity mismatch in %s: expected %d, got %d" r want got))
    (Instance.empty db_schema)
    (List.rev facts)

let instance_of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  instance_of_string s

let instance_to_string db =
  let buf = Buffer.create 1024 in
  let schema = Instance.schema db in
  List.iter
    (fun (s : Schema.t) ->
      let attr i =
        if List.mem i s.key then s.attrs.(i) ^ "*" else s.attrs.(i)
      in
      Buffer.add_string buf
        (Printf.sprintf "rel %s(%s)\n" s.name
           (String.concat ", " (List.init s.arity attr)));
      Relation.iter
        (fun t ->
          Buffer.add_string buf
            (Printf.sprintf "%s(%s)\n" s.name
               (String.concat ", " (List.map Value.to_string (Tuple.to_list t)))))
        (Instance.relation db s.name))
    (Schema.Db.relations schema);
  Buffer.contents buf

let instance_to_file path db =
  let oc = open_out path in
  output_string oc (instance_to_string db);
  close_out oc
