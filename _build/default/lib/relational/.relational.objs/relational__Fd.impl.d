lib/relational/fd.ml: Array Format Hashtbl List Option Relation Schema Stdlib String Tuple Value
