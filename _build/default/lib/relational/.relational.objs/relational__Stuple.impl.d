lib/relational/stuple.ml: Format Map Set String Tuple
