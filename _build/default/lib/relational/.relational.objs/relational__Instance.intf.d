lib/relational/instance.mli: Format Relation Schema Stuple Tuple
