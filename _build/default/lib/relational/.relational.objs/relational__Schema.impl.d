lib/relational/schema.ml: Array Format Fun Int List Map Printf String Tuple
