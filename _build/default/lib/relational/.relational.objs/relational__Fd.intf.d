lib/relational/fd.mli: Format Relation Schema Stdlib Tuple
