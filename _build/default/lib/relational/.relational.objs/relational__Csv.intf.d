lib/relational/csv.mli: Instance Relation
