lib/relational/instance.ml: Format List Map Relation Schema String Stuple
