lib/relational/serial.mli: Instance Tuple
