lib/relational/stuple.mli: Format Map Set Tuple
