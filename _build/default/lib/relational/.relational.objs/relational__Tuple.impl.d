lib/relational/tuple.ml: Array Format Int List Map Set Value
