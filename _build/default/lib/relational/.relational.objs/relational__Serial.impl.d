lib/relational/serial.ml: Array Buffer Format Instance List Printf Relation Schema String Tuple Value
