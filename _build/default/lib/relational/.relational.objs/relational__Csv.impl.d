lib/relational/csv.ml: Array Buffer Format Instance List Relation Schema String Tuple Value
