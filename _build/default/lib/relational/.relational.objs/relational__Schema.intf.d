lib/relational/schema.mli: Format Tuple
