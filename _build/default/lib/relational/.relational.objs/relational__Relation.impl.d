lib/relational/relation.ml: Array Format List Map Option Schema Tuple Value
