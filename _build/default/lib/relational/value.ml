type t =
  | Int of int
  | Str of string

let compare a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, Str _ -> -1
  | Str _, Int _ -> 1

let equal a b = compare a b = 0

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)

let int x = Int x
let str s = Str s

let fresh_counter = ref 0

let fresh () =
  incr fresh_counter;
  Str (Printf.sprintf "$%d" !fresh_counter)

let reset_fresh () = fresh_counter := 0

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Str s -> Format.pp_print_string ppf s

let to_string v = Format.asprintf "%a" pp v

let is_int_literal s =
  s <> ""
  && (let body = if s.[0] = '-' && String.length s > 1 then String.sub s 1 (String.length s - 1) else s in
      body <> "" && String.for_all (fun c -> c >= '0' && c <= '9') body)

let of_string s =
  let s = String.trim s in
  if is_int_literal s then Int (int_of_string s)
  else if String.length s >= 2 && s.[0] = '\'' && s.[String.length s - 1] = '\'' then
    Str (String.sub s 1 (String.length s - 2))
  else Str s
