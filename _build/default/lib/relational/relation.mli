(** A finite relation instance: a set of tuples obeying the schema's key.

    The key constraint (no two tuples agree on all key positions, §II.B)
    is enforced at insertion time: inserting a tuple whose key projection
    collides with an existing distinct tuple raises {!Key_violation}. *)

exception Key_violation of string * Tuple.t * Tuple.t
(** [Key_violation (rel, existing, offending)]. *)

exception Arity_mismatch of string * int * int
(** [Arity_mismatch (rel, expected, got)]. *)

type t

val empty : Schema.t -> t
val schema : t -> Schema.t
val name : t -> string

(** [add rel t] inserts [t]; idempotent on an already-present tuple.
    Raises {!Key_violation} / {!Arity_mismatch}. *)
val add : t -> Tuple.t -> t

val of_tuples : Schema.t -> Tuple.t list -> t
val remove : t -> Tuple.t -> t
val mem : t -> Tuple.t -> bool
val cardinal : t -> int
val is_empty : t -> bool
val tuples : t -> Tuple.t list
val to_set : t -> Tuple.Set.t
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val filter : (Tuple.t -> bool) -> t -> t

(** [find_by_key rel key_tuple] returns the unique tuple whose key
    projection equals [key_tuple], if any. This is the lookup the
    key-preserving property makes possible (§II.C). *)
val find_by_key : t -> Tuple.t -> Tuple.t option

(** [find_by_column rel pos v] — all tuples whose column [pos] holds [v],
    served from a per-column secondary hash index maintained
    incrementally on add/remove. O(1) expected, vs a scan.
    Raises [Invalid_argument] on out-of-range positions. *)
val find_by_column : t -> int -> Value.t -> Tuple.t list

(** Number of distinct values in a column — the selectivity statistic the
    join planner uses. *)
val distinct_in_column : t -> int -> int

val diff : t -> Tuple.Set.t -> t
(** [diff rel s] removes every tuple of [s] from [rel]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
