(** Constants stored in database cells.

    The paper draws constants from an abstract domain [Const]; we provide
    integers and strings, which is enough for every construction in the
    paper (reductions invent fresh constants, which {!fresh} supplies). *)

type t =
  | Int of int
  | Str of string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val int : int -> t
val str : string -> t

(** [fresh ()] returns a constant distinct from every constant previously
    returned by [fresh] and from every [Int]/[Str] a user would plausibly
    write (it is a ["$n"] string). Used by the hardness reductions to fill
    "the rest cells by distinct values" (proof of Thm 1). *)
val fresh : unit -> t

(** Reset the fresh-constant counter (for reproducible tests). *)
val reset_fresh : unit -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Parse a constant: an optionally-signed integer literal becomes [Int],
    a single-quoted or bare identifier becomes [Str]. *)
val of_string : string -> t
