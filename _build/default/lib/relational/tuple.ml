type t = Value.t array

let make a = Array.copy a
let of_list vs = Array.of_list vs
let ints xs = of_list (List.map Value.int xs)
let strs xs = of_list (List.map Value.str xs)

let arity = Array.length
let get t i = t.(i)
let to_list = Array.to_list
let to_array = Array.copy

let project t positions =
  let n = Array.length t in
  let pick i =
    if i < 0 || i >= n then invalid_arg "Tuple.project: position out of range"
    else t.(i)
  in
  Array.of_list (List.map pick positions)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
    (to_list t)

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
