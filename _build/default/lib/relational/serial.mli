(** Plain-text serialization of schemas and instances.

    Format, line oriented; [#] starts a comment:
    {v
    rel T1(name*, journal)        # '*' marks key attribute positions
    T1(john, tkde)
    T1(tom, tkde)
    rel T2(journal*, topic*, n)
    T2(tkde, xml, 30)
    v}
    Relation declarations must precede their facts. Values follow
    {!Value.of_string} (integer literals become [Int]). *)

exception Parse_error of int * string
(** [Parse_error (line, message)] — 1-based line number. *)

val instance_of_string : string -> Instance.t

(** Parse one fact ["T1(john, tkde)"] into (relation, tuple) — used by the
    CLI for deletion specifications. Raises {!Parse_error}. *)
val fact_of_string : string -> string * Tuple.t
val instance_of_file : string -> Instance.t
val instance_to_string : Instance.t -> string
val instance_to_file : string -> Instance.t -> unit
