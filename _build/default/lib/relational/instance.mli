(** Database instances: one {!Relation.t} per relation of a schema. *)

type t

val empty : Schema.Db.t -> t
val schema : t -> Schema.Db.t

(** [relation db name] — raises [Invalid_argument] on unknown names. *)
val relation : t -> string -> Relation.t

val relation_opt : t -> string -> Relation.t option

(** [add db name tuple] inserts into the named relation (key-checked). *)
val add : t -> string -> Tuple.t -> t

val add_stuple : t -> Stuple.t -> t

(** [of_alist schema bindings] builds an instance from
    [(relation_name, tuples)] pairs. *)
val of_alist : Schema.Db.t -> (string * Tuple.t list) list -> t

val mem : t -> Stuple.t -> bool
val remove : t -> Stuple.t -> t

(** [delete db d] applies the deletion [ΔD = d]: [D \ ΔD]. *)
val delete : t -> Stuple.Set.t -> t

(** All source tuples of the instance. *)
val stuples : t -> Stuple.t list

(** Total number of tuples, the paper's [|D|]. *)
val size : t -> int

val fold : (Stuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
