(** CSV loading and dumping for relations — the bulk-data path (the text
    format of {!Serial} is for whole instances; CSV is how real data
    arrives).

    Dialect: comma separator, double-quote quoting with ["" ] escapes,
    first row = header (attribute names), one row per tuple. Values go
    through {!Value.of_string} (integer literals become [Int]). *)

exception Csv_error of int * string
(** [(1-based row, message)]. *)

(** [relation_of_string ~name ~key csv] — [key] lists key attribute
    {e names} (must appear in the header). Key violations in the data
    raise {!Csv_error}. *)
val relation_of_string : name:string -> key:string list -> string -> Relation.t

val relation_of_file : name:string -> key:string list -> string -> Relation.t

val relation_to_string : Relation.t -> string

(** [add_to_instance db ~name ~key csv] — declare-and-load into an
    existing instance's schema is not possible ({!Schema.Db} is fixed at
    creation); this instead returns a fresh instance with the relation
    appended, carrying all existing relations over. *)
val add_to_instance :
  Instance.t -> name:string -> key:string list -> string -> Instance.t
