exception Key_violation of string * Tuple.t * Tuple.t
exception Arity_mismatch of string * int * int

module VM = Map.Make (Value)

type t = {
  schema : Schema.t;
  tuples : Tuple.Set.t;
  by_key : Tuple.t Tuple.Map.t;       (* key projection -> full tuple *)
  by_column : Tuple.Set.t VM.t array; (* secondary index per column *)
}

let empty schema =
  {
    schema;
    tuples = Tuple.Set.empty;
    by_key = Tuple.Map.empty;
    by_column = Array.make schema.Schema.arity VM.empty;
  }

let schema r = r.schema
let name r = r.schema.Schema.name

let index_add by_column t =
  Array.mapi
    (fun i m ->
      let v = Tuple.get t i in
      VM.update v
        (fun cur -> Some (Tuple.Set.add t (Option.value ~default:Tuple.Set.empty cur)))
        m)
    by_column

let index_remove by_column t =
  Array.mapi
    (fun i m ->
      let v = Tuple.get t i in
      VM.update v
        (fun cur ->
          match cur with
          | None -> None
          | Some s ->
            let s = Tuple.Set.remove t s in
            if Tuple.Set.is_empty s then None else Some s)
        m)
    by_column

let add r t =
  if Tuple.arity t <> r.schema.Schema.arity then
    raise (Arity_mismatch (name r, r.schema.Schema.arity, Tuple.arity t));
  let k = Schema.key_of_tuple r.schema t in
  match Tuple.Map.find_opt k r.by_key with
  | Some existing when not (Tuple.equal existing t) ->
    raise (Key_violation (name r, existing, t))
  | Some _ -> r
  | None ->
    {
      r with
      tuples = Tuple.Set.add t r.tuples;
      by_key = Tuple.Map.add k t r.by_key;
      by_column = index_add r.by_column t;
    }

let of_tuples schema ts = List.fold_left add (empty schema) ts

let remove r t =
  if not (Tuple.Set.mem t r.tuples) then r
  else
    let k = Schema.key_of_tuple r.schema t in
    {
      r with
      tuples = Tuple.Set.remove t r.tuples;
      by_key = Tuple.Map.remove k r.by_key;
      by_column = index_remove r.by_column t;
    }

let mem r t = Tuple.Set.mem t r.tuples
let cardinal r = Tuple.Set.cardinal r.tuples
let is_empty r = Tuple.Set.is_empty r.tuples
let tuples r = Tuple.Set.elements r.tuples
let to_set r = r.tuples
let fold f r acc = Tuple.Set.fold f r.tuples acc
let iter f r = Tuple.Set.iter f r.tuples

let filter p r =
  Tuple.Set.fold (fun t acc -> if p t then acc else remove acc t) r.tuples r

let find_by_key r k = Tuple.Map.find_opt k r.by_key

let find_by_column r pos v =
  if pos < 0 || pos >= r.schema.Schema.arity then
    invalid_arg "Relation.find_by_column: position out of range";
  match VM.find_opt v r.by_column.(pos) with
  | Some s -> Tuple.Set.elements s
  | None -> []

let distinct_in_column r pos =
  if pos < 0 || pos >= r.schema.Schema.arity then
    invalid_arg "Relation.distinct_in_column: position out of range";
  VM.cardinal r.by_column.(pos)

let diff r s = Tuple.Set.fold (fun t acc -> remove acc t) s r

let equal a b = Schema.equal a.schema b.schema && Tuple.Set.equal a.tuples b.tuples

let pp ppf r =
  Format.fprintf ppf "@[<v 2>%a = {@ %a }@]" Schema.pp r.schema
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Tuple.pp)
    (tuples r)
