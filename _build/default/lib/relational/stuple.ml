type t = { rel : string; tuple : Tuple.t }

let make rel tuple = { rel; tuple }

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c else Tuple.compare a.tuple b.tuple

let equal a b = compare a b = 0

let pp ppf t = Format.fprintf ppf "%s%a" t.rel Tuple.pp t.tuple
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
