type t = {
  lhs : string list;
  rhs : string list;
}

module Attrs = Stdlib.Set.Make (String)

let make ~lhs ~rhs =
  { lhs = List.sort_uniq String.compare lhs; rhs = List.sort_uniq String.compare rhs }

let pp ppf fd =
  Format.fprintf ppf "%s -> %s" (String.concat "," fd.lhs) (String.concat "," fd.rhs)

let closure fds attrs =
  let rec go acc =
    let next =
      List.fold_left
        (fun acc fd ->
          if List.for_all (fun a -> Attrs.mem a acc) fd.lhs then
            List.fold_left (fun acc a -> Attrs.add a acc) acc fd.rhs
          else acc)
        acc fds
    in
    if Attrs.equal next acc then acc else go next
  in
  go attrs

let implies fds fd =
  let c = closure fds (Attrs.of_list fd.lhs) in
  List.for_all (fun a -> Attrs.mem a c) fd.rhs

let all_attrs (s : Schema.t) = Attrs.of_list (Array.to_list s.Schema.attrs)

let is_superkey s fds attrs =
  Attrs.subset (all_attrs s) (closure fds (Attrs.of_list attrs))

let is_candidate_key s fds attrs =
  is_superkey s fds attrs
  && not
       (List.exists
          (fun dropped ->
            is_superkey s fds (List.filter (fun a -> a <> dropped) attrs))
          attrs)

let candidate_keys s fds =
  let attrs = Array.to_list s.Schema.attrs in
  let n = List.length attrs in
  let subsets =
    List.init (1 lsl n) (fun mask ->
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) attrs)
  in
  List.filter (fun sub -> sub <> [] && is_candidate_key s fds sub) subsets

let project_attrs rel fd_attrs tuple =
  let s = Relation.schema rel in
  List.map (fun a -> Tuple.get tuple (Schema.attr_index s a)) fd_attrs

let violations rel fd =
  let tuples = Relation.tuples rel in
  let groups = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let key = List.map Value.to_string (project_attrs rel fd.lhs t) in
      Hashtbl.replace groups key (t :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    tuples;
  Hashtbl.fold
    (fun _ group acc ->
      let rec pairs = function
        | a :: rest ->
          List.filter_map
            (fun b ->
              if project_attrs rel fd.rhs a <> project_attrs rel fd.rhs b then Some (a, b)
              else None)
            rest
          @ pairs rest
        | [] -> []
      in
      pairs group @ acc)
    groups []

let satisfies rel fd = violations rel fd = []

let minimal_cover fds =
  (* 1. singleton right-hand sides *)
  let singletons =
    List.concat_map (fun fd -> List.map (fun a -> make ~lhs:fd.lhs ~rhs:[ a ]) fd.rhs) fds
  in
  (* 2. remove extraneous lhs attributes *)
  let reduce_lhs fds fd =
    let rec go lhs =
      match
        List.find_opt
          (fun dropped ->
            let smaller = List.filter (fun a -> a <> dropped) lhs in
            smaller <> [] && implies fds (make ~lhs:smaller ~rhs:fd.rhs))
          lhs
      with
      | Some dropped -> go (List.filter (fun a -> a <> dropped) lhs)
      | None -> lhs
    in
    make ~lhs:(go fd.lhs) ~rhs:fd.rhs
  in
  let reduced = List.map (reduce_lhs singletons) singletons in
  (* 3. drop redundant FDs *)
  let rec prune kept = function
    | [] -> List.rev kept
    | fd :: rest ->
      if implies (List.rev_append kept rest) fd then prune kept rest
      else prune (fd :: kept) rest
  in
  prune [] (List.sort_uniq compare reduced)

let implied_by_declared_key (s : Schema.t) fd =
  let key_attrs = List.map (fun i -> s.Schema.attrs.(i)) s.Schema.key in
  let axiom = make ~lhs:key_attrs ~rhs:(Array.to_list s.Schema.attrs) in
  implies [ axiom ] fd
