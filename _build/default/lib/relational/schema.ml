type t = {
  name : string;
  arity : int;
  attrs : string array;
  key : int list;
}

let has_duplicates l =
  let sorted = List.sort compare l in
  let rec go = function
    | a :: (b :: _ as rest) -> a = b || go rest
    | _ -> false
  in
  go sorted

let make ~name ~attrs ~key =
  let arity = List.length attrs in
  if arity = 0 then invalid_arg "Schema.make: empty attribute list";
  if has_duplicates attrs then invalid_arg "Schema.make: duplicate attribute names";
  if key = [] then invalid_arg "Schema.make: empty key";
  if has_duplicates key then invalid_arg "Schema.make: duplicate key positions";
  if List.exists (fun i -> i < 0 || i >= arity) key then
    invalid_arg "Schema.make: key position out of range";
  { name; arity; attrs = Array.of_list attrs; key = List.sort Int.compare key }

let make_anon ~name ~arity ~key =
  let attrs = List.init arity (Printf.sprintf "c%d") in
  make ~name ~attrs ~key

let non_key s =
  List.filter (fun i -> not (List.mem i s.key)) (List.init s.arity Fun.id)

let key_of_tuple s t = Tuple.project t s.key

let attr_index s a =
  let rec go i =
    if i = s.arity then raise Not_found
    else if String.equal s.attrs.(i) a then i
    else go (i + 1)
  in
  go 0

let equal a b =
  String.equal a.name b.name && a.arity = b.arity
  && Array.for_all2 String.equal a.attrs b.attrs
  && List.equal Int.equal a.key b.key

let pp ppf s =
  let pp_attr ppf i =
    if List.mem i s.key then Format.fprintf ppf "%s*" s.attrs.(i)
    else Format.pp_print_string ppf s.attrs.(i)
  in
  Format.fprintf ppf "%s(%a)" s.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_attr)
    (List.init s.arity Fun.id)

module Db = struct
  module M = Map.Make (String)

  type rel = t
  type nonrec t = rel M.t

  let of_list rels =
    List.fold_left
      (fun m (r : rel) ->
        if M.mem r.name m then invalid_arg ("Schema.Db.of_list: duplicate relation " ^ r.name)
        else M.add r.name r m)
      M.empty rels

  let find db name =
    match M.find_opt name db with
    | Some r -> r
    | None -> invalid_arg ("Schema.Db.find: unknown relation " ^ name)

  let find_opt db name = M.find_opt name db
  let mem db name = M.mem name db
  let relations db = List.map snd (M.bindings db)
  let names db = List.map fst (M.bindings db)

  let add db (r : rel) =
    if M.mem r.name db then invalid_arg ("Schema.Db.add: duplicate relation " ^ r.name)
    else M.add r.name r db

  let pp ppf db =
    Format.pp_print_list ~pp_sep:Format.pp_print_newline pp ppf (relations db)
end
