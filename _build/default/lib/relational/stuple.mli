(** Source tuples: a tuple tagged with the relation it lives in.

    Deletion-propagation solutions [ΔD] are sets of source tuples; tagging
    with the relation name disambiguates equal tuples in different
    relations. *)

type t = { rel : string; tuple : Tuple.t }

val make : string -> Tuple.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
