exception Csv_error of int * string

let fail row fmt = Format.kasprintf (fun m -> raise (Csv_error (row, m))) fmt

(* split one CSV record; handles quotes and "" escapes *)
let split_record row line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    end
    else if c = '"' then
      if Buffer.length buf = 0 then begin
        in_quotes := true;
        incr i
      end
      else fail row "unexpected quote mid-field"
    else if c = ',' then begin
      fields := Buffer.contents buf :: !fields;
      Buffer.clear buf;
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  if !in_quotes then fail row "unterminated quoted field";
  fields := Buffer.contents buf :: !fields;
  List.rev !fields

let records_of_string s =
  String.split_on_char '\n' s
  |> List.map (fun l ->
         if String.length l > 0 && l.[String.length l - 1] = '\r' then
           String.sub l 0 (String.length l - 1)
         else l)
  |> List.filter (fun l -> String.trim l <> "")

let relation_of_string ~name ~key csv =
  match records_of_string csv with
  | [] -> fail 1 "empty CSV (no header)"
  | header :: rows ->
    let attrs = split_record 1 header |> List.map String.trim in
    let key_positions =
      List.map
        (fun k ->
          let rec idx i = function
            | [] -> fail 1 "key attribute %s not in header" k
            | a :: _ when a = k -> i
            | _ :: rest -> idx (i + 1) rest
          in
          idx 0 attrs)
        key
    in
    let schema =
      try Schema.make ~name ~attrs ~key:key_positions
      with Invalid_argument m -> fail 1 "%s" m
    in
    List.fold_left
      (fun (rel, rowno) line ->
        let fields = split_record rowno line in
        if List.length fields <> List.length attrs then
          fail rowno "expected %d fields, got %d" (List.length attrs) (List.length fields);
        let tuple = Tuple.of_list (List.map Value.of_string fields) in
        let rel =
          try Relation.add rel tuple with
          | Relation.Key_violation (r, t1, t2) ->
            fail rowno "key violation in %s: %s vs %s" r (Tuple.to_string t1)
              (Tuple.to_string t2)
        in
        (rel, rowno + 1))
      (Relation.empty schema, 2)
      rows
    |> fst

let relation_of_file ~name ~key path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  relation_of_string ~name ~key s

let quote_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let relation_to_string rel =
  let s = Relation.schema rel in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (Array.to_list s.Schema.attrs));
  Buffer.add_char buf '\n';
  Relation.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun v -> quote_field (Value.to_string v)) (Tuple.to_list t)));
      Buffer.add_char buf '\n')
    rel;
  Buffer.contents buf

let add_to_instance db ~name ~key csv =
  let rel = relation_of_string ~name ~key csv in
  let old_schema = Instance.schema db in
  let schema = Schema.Db.add old_schema (Relation.schema rel) in
  let fresh = Instance.empty schema in
  let fresh =
    List.fold_left
      (fun acc st -> Instance.add_stuple acc st)
      fresh (Instance.stuples db)
  in
  Relation.fold (fun t acc -> Instance.add acc name t) rel fresh
