(** Relation schemas: a name, an arity, named attributes, and a key.

    Following §II.B of the paper, every relation has at least one key
    attribute position; the key states that no two tuples of the relation
    agree on all key positions. *)

type t = private {
  name : string;
  arity : int;
  attrs : string array;          (** attribute names, length = arity *)
  key : int list;                (** sorted 0-based key positions, non-empty *)
}

(** [make ~name ~attrs ~key] builds a schema. [key] positions must be
    in-range, duplicate-free and non-empty; [attrs] must be non-empty and
    duplicate-free. Raises [Invalid_argument] otherwise. *)
val make : name:string -> attrs:string list -> key:int list -> t

(** [make_anon ~name ~arity ~key] builds a schema with attribute names
    [c0..c{arity-1}]. *)
val make_anon : name:string -> arity:int -> key:int list -> t

(** Positions that are not key positions, sorted. *)
val non_key : t -> int list

(** [key_of_tuple s t] projects [t] on the key positions of [s]. *)
val key_of_tuple : t -> Tuple.t -> Tuple.t

(** [attr_index s a] is the position of attribute [a].
    Raises [Not_found] if absent. *)
val attr_index : t -> string -> int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** A database schema is a collection of relation schemas with distinct
    names, as in the paper's [S = (T1, ..., Tm)]. *)
module Db : sig
  type rel := t
  type t

  val of_list : rel list -> t
  val find : t -> string -> rel
  val find_opt : t -> string -> rel option
  val mem : t -> string -> bool
  val relations : t -> rel list
  val names : t -> string list
  val add : t -> rel -> t
  val pp : Format.formatter -> t -> unit
end
