module M = Map.Make (String)

type t = {
  schema : Schema.Db.t;
  rels : Relation.t M.t;
}

let empty schema =
  let rels =
    List.fold_left
      (fun m s -> M.add s.Schema.name (Relation.empty s) m)
      M.empty (Schema.Db.relations schema)
  in
  { schema; rels }

let schema db = db.schema

let relation db name =
  match M.find_opt name db.rels with
  | Some r -> r
  | None -> invalid_arg ("Instance.relation: unknown relation " ^ name)

let relation_opt db name = M.find_opt name db.rels

let update db name f = { db with rels = M.add name (f (relation db name)) db.rels }

let add db name tuple = update db name (fun r -> Relation.add r tuple)
let add_stuple db (st : Stuple.t) = add db st.rel st.tuple

let of_alist schema bindings =
  List.fold_left
    (fun db (name, tuples) ->
      List.fold_left (fun db t -> add db name t) db tuples)
    (empty schema) bindings

let mem db (st : Stuple.t) =
  match relation_opt db st.rel with
  | Some r -> Relation.mem r st.tuple
  | None -> false

let remove db (st : Stuple.t) = update db st.rel (fun r -> Relation.remove r st.tuple)

let delete db dd = Stuple.Set.fold (fun st acc -> remove acc st) dd db

let fold f db acc =
  M.fold
    (fun name r acc -> Relation.fold (fun t acc -> f (Stuple.make name t) acc) r acc)
    db.rels acc

let stuples db = List.rev (fold (fun st acc -> st :: acc) db [])

let size db = M.fold (fun _ r acc -> acc + Relation.cardinal r) db.rels 0

let equal a b = M.equal Relation.equal a.rels b.rels

let pp ppf db =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline Relation.pp ppf
    (List.map snd (M.bindings db.rels))
