(** Database tuples: immutable vectors of constants. *)

type t

val make : Value.t array -> t

(** [of_list vs] builds a tuple from a value list. *)
val of_list : Value.t list -> t

(** Convenience constructors used heavily in tests and examples. *)
val ints : int list -> t
val strs : string list -> t

val arity : t -> int
val get : t -> int -> Value.t
val to_list : t -> Value.t list
val to_array : t -> Value.t array

(** [project t positions] is the sub-tuple at the given 0-based positions
    (in the order given). Raises [Invalid_argument] on out-of-range. *)
val project : t -> int list -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
