type set = {
  label : string;
  pos : Iset.t;
  neg : Iset.t;
}

type t = {
  pos_weights : float array;
  neg_weights : float array;
  sets : set array;
}

let make ~pos_weights ~neg_weights sets =
  let np = Array.length pos_weights and nn = Array.length neg_weights in
  List.iteri
    (fun i s ->
      let bad_pos = Iset.exists (fun p -> p < 0 || p >= np) s.pos in
      let bad_neg = Iset.exists (fun n -> n < 0 || n >= nn) s.neg in
      if bad_pos || bad_neg then
        invalid_arg (Printf.sprintf "Pos_neg.make: set %d (%s) out of range" i s.label))
    sets;
  { pos_weights; neg_weights; sets = Array.of_list sets }

let make_unit ~num_pos ~num_neg sets =
  make ~pos_weights:(Array.make num_pos 1.0) ~neg_weights:(Array.make num_neg 1.0) sets

let num_pos t = Array.length t.pos_weights
let num_neg t = Array.length t.neg_weights
let num_sets t = Array.length t.sets

type solution = {
  chosen : int list;
  pos_uncovered : Iset.t;
  neg_covered : Iset.t;
  cost : float;
}

let weight ws s = Iset.fold (fun i acc -> acc +. ws.(i)) s 0.0

let solution_of t chosen =
  let covered_pos =
    List.fold_left (fun acc i -> Iset.union acc t.sets.(i).pos) Iset.empty chosen
  in
  let neg_covered =
    List.fold_left (fun acc i -> Iset.union acc t.sets.(i).neg) Iset.empty chosen
  in
  let pos_uncovered = Iset.diff (Iset.of_range (num_pos t)) covered_pos in
  {
    chosen = List.sort_uniq Int.compare chosen;
    pos_uncovered;
    neg_covered;
    cost = weight t.pos_weights pos_uncovered +. weight t.neg_weights neg_covered;
  }

(* Exhaustive DFS over set indices.  Pruning: the cost of negatives
   already incurred plus the weight of positives no remaining set can
   cover is a lower bound on any completion. *)
let solve_exact ?(node_budget = 5_000_000) t =
  let n = num_sets t in
  let nodes = ref 0 in
  (* coverable.(i) = union of pos over sets i..n-1 *)
  let coverable = Array.make (n + 1) Iset.empty in
  for i = n - 1 downto 0 do
    coverable.(i) <- Iset.union coverable.(i + 1) t.sets.(i).pos
  done;
  let best = ref (solution_of t []) in
  let rec go i chosen covered_pos neg_covered neg_cost =
    incr nodes;
    if !nodes > node_budget then failwith "Pos_neg.solve_exact: node budget exceeded";
    let unreachable_pos = Iset.diff (Iset.diff (Iset.of_range (num_pos t)) covered_pos) coverable.(i) in
    let lower = neg_cost +. weight t.pos_weights unreachable_pos in
    if lower >= !best.cost then ()
    else if i = n then begin
      let sol = solution_of t chosen in
      if sol.cost < !best.cost then best := sol
    end
    else begin
      (* take set i *)
      go (i + 1) (i :: chosen)
        (Iset.union covered_pos t.sets.(i).pos)
        (Iset.union neg_covered t.sets.(i).neg)
        (weight t.neg_weights (Iset.union neg_covered t.sets.(i).neg));
      (* skip set i *)
      go (i + 1) chosen covered_pos neg_covered neg_cost
    end
  in
  go 0 [] Iset.empty Iset.empty 0.0;
  !best

let to_red_blue t =
  let np = num_pos t and nn = num_neg t in
  (* red ids: 0..nn-1 = negatives, nn..nn+np-1 = the fresh r_p *)
  let red_weights = Array.append t.neg_weights t.pos_weights in
  let original =
    Array.to_list t.sets
    |> List.map (fun s -> { Red_blue.label = s.label; red = s.neg; blue = s.pos })
  in
  let singletons =
    List.init np (fun p ->
        { Red_blue.label = Printf.sprintf "uncover:%d" p;
          red = Iset.singleton (nn + p);
          blue = Iset.singleton p })
  in
  Red_blue.make ~red_weights ~num_blue:np (original @ singletons)

let of_red_blue_solution t (sol : Red_blue.solution) =
  let n = num_sets t in
  solution_of t (List.filter (fun i -> i < n) sol.chosen)

let solve_approx t =
  match Red_blue.solve_approx (to_red_blue t) with
  | Some sol -> of_red_blue_solution t sol
  | None ->
    (* to_red_blue is always coverable via the singleton sets *)
    assert false

let of_red_blue (rb : Red_blue.t) =
  let total_red = Array.fold_left ( +. ) 0.0 rb.Red_blue.red_weights in
  let pos_weights = Array.make rb.Red_blue.num_blue (total_red +. 1.0) in
  let sets =
    Array.to_list rb.Red_blue.sets
    |> List.map (fun (s : Red_blue.set) -> { label = s.label; pos = s.blue; neg = s.red })
  in
  make ~pos_weights ~neg_weights:rb.Red_blue.red_weights sets

let pp ppf t =
  Format.fprintf ppf "@[<v>pos: %d, neg: %d, sets: %d@ %a@]" (num_pos t) (num_neg t)
    (num_sets t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf s ->
         Format.fprintf ppf "%s: pos=%a neg=%a" s.label Iset.pp s.pos Iset.pp s.neg))
    (Array.to_list t.sets)
