(** Integer sets — element universe for the set-cover problems. *)

include Stdlib.Set.S with type elt = int

val of_range : int -> t
(** [of_range n] = [{0, ..., n-1}]. *)

val pp : Format.formatter -> t -> unit
