(** Classic weighted Set Cover — the combinatorial core of the paper's
    companion problem, {e source} side-effect (Tables II–III): with
    key-preserving views, deleting all of [ΔV] while removing as few
    (weighted) source tuples as possible is exactly covering the bad view
    tuples by witness tuples of minimum total weight. *)

type set = {
  label : string;
  elements : Iset.t;
}

type t = private {
  universe : int;          (** elements are [0..universe-1] *)
  weights : float array;   (** one weight per set *)
  sets : set array;
}

val make : universe:int -> weights:float array -> set list -> t
val make_unit : universe:int -> set list -> t

val num_sets : t -> int

type solution = {
  chosen : int list;
  cost : float;
}

val is_feasible : t -> int list -> bool
val coverable : t -> bool

(** Exact optimum by branch-and-bound (same engine shape as
    {!Red_blue.solve_exact}); [None] iff uncoverable. *)
val solve_exact : ?node_budget:int -> t -> solution option

(** Greedy by weight-per-new-element; the classic [H_n]-approximation. *)
val solve_greedy : t -> solution option
