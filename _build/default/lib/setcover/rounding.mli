(** LP-relaxation solver for Red-Blue Set Cover: solve the natural LP
    with {!Lp.Simplex}, then round deterministically.

    LP: variables [x_S] (set chosen) and [z_r] (red element covered);
    minimize [Σ w_r·z_r] subject to [Σ_{S ∋ b} x_S ≥ 1] per blue [b] and
    [z_r ≥ x_S] per [r ∈ S]. Rounding: take every set with
    [x_S ≥ 1/f] where [f] is the maximum number of sets containing a
    blue element — always feasible, and the chosen sets' [x] values are
    at least [1/f], so the rounded red cost is at most [f] times the LP
    optimum per covered red (an f-approximation in the x-scale; on red
    cost it is a heuristic complementing greedy/LowDeg).

    Also exposes the LP optimum as a lower bound on the integral
    optimum, used by experiment E11-style comparisons. *)

type outcome = {
  solution : Red_blue.solution option;  (** rounded; [None] if uncoverable *)
  lp_bound : float;                     (** LP optimum: lower bound on OPT *)
}

(** [None] when the simplex fails (does not happen on well-formed,
    coverable instances). *)
val solve : Red_blue.t -> outcome option

(** LP lower bound only. *)
val lower_bound : Red_blue.t -> float option
