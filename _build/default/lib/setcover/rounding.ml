type outcome = {
  solution : Red_blue.solution option;
  lp_bound : float;
}

(* variables: x_0..x_{m-1} (sets), then z_0..z_{num_red-1} (reds) *)
let build_lp (t : Red_blue.t) =
  let m = Red_blue.num_sets t in
  let nr = Red_blue.num_red t in
  let nvars = m + nr in
  let objective = Array.make nvars 0.0 in
  Array.iteri (fun r w -> objective.(m + r) <- w) t.Red_blue.red_weights;
  let cover_constraints =
    List.init t.Red_blue.num_blue (fun b ->
        let coeffs = Array.make nvars 0.0 in
        Array.iteri
          (fun s (set : Red_blue.set) ->
            if Iset.mem b set.Red_blue.blue then coeffs.(s) <- 1.0)
          t.Red_blue.sets;
        { Lp.Problem.coeffs; op = Lp.Problem.Ge; rhs = 1.0;
          cname = Printf.sprintf "cover_b%d" b })
  in
  let charge_constraints =
    Array.to_list t.Red_blue.sets
    |> List.mapi (fun s (set : Red_blue.set) ->
           Iset.elements set.Red_blue.red
           |> List.map (fun r ->
                  let coeffs = Array.make nvars 0.0 in
                  coeffs.(m + r) <- 1.0;
                  coeffs.(s) <- -1.0;
                  { Lp.Problem.coeffs; op = Lp.Problem.Ge; rhs = 0.0;
                    cname = Printf.sprintf "charge_s%d_r%d" s r }))
    |> List.concat
  in
  (* x_S ≤ 1 keeps the LP bounded and the rounding scale meaningful *)
  let box =
    List.init m (fun s ->
        let coeffs = Array.make nvars 0.0 in
        coeffs.(s) <- 1.0;
        { Lp.Problem.coeffs; op = Lp.Problem.Le; rhs = 1.0;
          cname = Printf.sprintf "box_s%d" s })
  in
  Lp.Problem.make ~direction:Lp.Problem.Minimize ~objective
    ~constraints:(cover_constraints @ charge_constraints @ box)
    ()

let max_blue_frequency (t : Red_blue.t) =
  let freq = Array.make t.Red_blue.num_blue 0 in
  Array.iter
    (fun (s : Red_blue.set) -> Iset.iter (fun b -> freq.(b) <- freq.(b) + 1) s.Red_blue.blue)
    t.Red_blue.sets;
  Array.fold_left max 1 freq

let solve t =
  if not (Red_blue.coverable t) then
    Some { solution = None; lp_bound = 0.0 }
  else
    match Lp.Simplex.solve (build_lp t) with
    | Lp.Simplex.Optimal { x; value; _ } ->
      let m = Red_blue.num_sets t in
      let f = float_of_int (max_blue_frequency t) in
      let threshold = 1.0 /. f -. 1e-9 in
      let chosen =
        List.init m Fun.id |> List.filter (fun s -> x.(s) >= threshold)
      in
      Some { solution = Red_blue.solution_of t chosen; lp_bound = value }
    | Lp.Simplex.Infeasible | Lp.Simplex.Unbounded -> None

let lower_bound t =
  match solve t with
  | Some { lp_bound; _ } -> Some lp_bound
  | None -> None
