(** The Positive-Negative Partial Set Cover problem (§II.D,
    Miettinen [38]).

    Choose a sub-collection; cost = weight of positives left uncovered +
    weight of negatives covered. Unlike Red-Blue, coverage of positives
    is optional — this is the combinatorial core of the paper's
    {e balanced} deletion propagation (Thm 2, Lemma 1). *)

type set = {
  label : string;
  pos : Iset.t;
  neg : Iset.t;
}

type t = private {
  pos_weights : float array;
  neg_weights : float array;
  sets : set array;
}

val make : pos_weights:float array -> neg_weights:float array -> set list -> t
val make_unit : num_pos:int -> num_neg:int -> set list -> t

val num_pos : t -> int
val num_neg : t -> int
val num_sets : t -> int

type solution = {
  chosen : int list;
  pos_uncovered : Iset.t;
  neg_covered : Iset.t;
  cost : float;
}

(** Cost of an arbitrary choice (always defined: the empty choice costs
    the total positive weight). *)
val solution_of : t -> int list -> solution

(** Exact optimum by depth-first search over sets with cost pruning.
    [node_budget] defaults to [5_000_000]; raises [Failure] on blowup. *)
val solve_exact : ?node_budget:int -> t -> solution

(** Miettinen's linear reduction to Red-Blue Set Cover: blue = positives;
    red = negatives plus one fresh red [r_p] per positive [p] of weight
    [w_p]; sets = originals plus [{p, r_p}] per positive. Cost is
    preserved exactly, so any RBSC algorithm solves PNPSC. *)
val to_red_blue : t -> Red_blue.t

(** Map an RBSC solution on [to_red_blue t] back: keep original sets. *)
val of_red_blue_solution : t -> Red_blue.solution -> solution

(** Approximation via {!to_red_blue} + [Red_blue.solve_approx]. *)
val solve_approx : t -> solution

(** The reverse reduction (RBSC → PNPSC): positives = blue with weight
    exceeding the total red weight (forcing coverage), negatives = red.
    Used by tests to check the two problems are inter-reducible. *)
val of_red_blue : Red_blue.t -> t

val pp : Format.formatter -> t -> unit
