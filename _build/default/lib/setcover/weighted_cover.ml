type set = {
  label : string;
  elements : Iset.t;
}

type t = {
  universe : int;
  weights : float array;
  sets : set array;
}

let make ~universe ~weights sets =
  if List.length sets <> Array.length weights then
    invalid_arg "Weighted_cover.make: weights/sets length mismatch";
  List.iteri
    (fun i s ->
      if Iset.exists (fun e -> e < 0 || e >= universe) s.elements then
        invalid_arg (Printf.sprintf "Weighted_cover.make: set %d (%s) out of range" i s.label))
    sets;
  { universe; weights; sets = Array.of_list sets }

let make_unit ~universe sets =
  make ~universe ~weights:(Array.make (List.length sets) 1.0) sets

let num_sets t = Array.length t.sets

type solution = {
  chosen : int list;
  cost : float;
}

let union_of t chosen =
  List.fold_left (fun acc i -> Iset.union acc t.sets.(i).elements) Iset.empty chosen

let is_feasible t chosen = Iset.cardinal (union_of t chosen) = t.universe

let coverable t = is_feasible t (List.init (num_sets t) Fun.id)

let cost_of t chosen = List.fold_left (fun acc i -> acc +. t.weights.(i)) 0.0 chosen

let solve_exact ?(node_budget = 5_000_000) t =
  if not (coverable t) then None
  else begin
    let nodes = ref 0 in
    let best = ref None and best_cost = ref infinity in
    let containing = Array.make t.universe [] in
    Array.iteri
      (fun i s -> Iset.iter (fun e -> containing.(e) <- i :: containing.(e)) s.elements)
      t.sets;
    let rec go covered cost chosen =
      incr nodes;
      if !nodes > node_budget then failwith "Weighted_cover.solve_exact: node budget exceeded";
      if cost >= !best_cost then ()
      else if Iset.cardinal covered = t.universe then begin
        best_cost := cost;
        best := Some (List.rev chosen)
      end
      else begin
        (* branch on the uncovered element with fewest candidates *)
        let target = ref (-1) and target_n = ref max_int in
        for e = 0 to t.universe - 1 do
          if not (Iset.mem e covered) then begin
            let n = List.length containing.(e) in
            if n < !target_n then begin
              target_n := n;
              target := e
            end
          end
        done;
        containing.(!target)
        |> List.map (fun i -> (i, t.weights.(i)))
        |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
        |> List.iter (fun (i, w) ->
               go (Iset.union covered t.sets.(i).elements) (cost +. w) (i :: chosen))
      end
    in
    go Iset.empty 0.0 [];
    Option.map (fun chosen -> { chosen = List.sort_uniq Int.compare chosen; cost = cost_of t chosen }) !best
  end

let solve_greedy t =
  if not (coverable t) then None
  else begin
    let covered = ref Iset.empty in
    let chosen = ref [] in
    while Iset.cardinal !covered < t.universe do
      let best = ref None and best_score = ref infinity in
      Array.iteri
        (fun i s ->
          let gain = Iset.cardinal (Iset.diff s.elements !covered) in
          if gain > 0 then begin
            let score = t.weights.(i) /. float_of_int gain in
            if score < !best_score then begin
              best_score := score;
              best := Some i
            end
          end)
        t.sets;
      match !best with
      | Some i ->
        covered := Iset.union !covered t.sets.(i).elements;
        chosen := i :: !chosen
      | None -> assert false
    done;
    Some { chosen = List.sort_uniq Int.compare !chosen; cost = cost_of t !chosen }
  end
