(** Budgeted maximum coverage: choose at most [k] sets maximizing the
    total weight of covered elements. The greedy algorithm is the classic
    (1 − 1/e)-approximation; the exact solver enumerates for validation.
    Backs the greedy bounded-deletion heuristic ([Deleprop.Bounded]). *)

type set = {
  label : string;
  elements : Iset.t;
}

type t = private {
  element_weights : float array;
  sets : set array;
}

val make : element_weights:float array -> set list -> t
val make_unit : universe:int -> set list -> t

type solution = {
  chosen : int list;
  covered : Iset.t;
  weight : float;
}

(** Greedy: k rounds of best marginal gain. *)
val solve_greedy : t -> k:int -> solution

(** Exact by enumeration of ≤ k-subsets; [max_sets] (default 20) bounds
    the blowup. *)
val solve_exact : ?max_sets:int -> t -> k:int -> solution
