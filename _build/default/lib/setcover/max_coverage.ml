type set = {
  label : string;
  elements : Iset.t;
}

type t = {
  element_weights : float array;
  sets : set array;
}

let make ~element_weights sets =
  let n = Array.length element_weights in
  List.iteri
    (fun i s ->
      if Iset.exists (fun e -> e < 0 || e >= n) s.elements then
        invalid_arg (Printf.sprintf "Max_coverage.make: set %d (%s) out of range" i s.label))
    sets;
  { element_weights; sets = Array.of_list sets }

let make_unit ~universe sets = make ~element_weights:(Array.make universe 1.0) sets

type solution = {
  chosen : int list;
  covered : Iset.t;
  weight : float;
}

let weight_of t s = Iset.fold (fun e acc -> acc +. t.element_weights.(e)) s 0.0

let solution_of t chosen =
  let covered =
    List.fold_left (fun acc i -> Iset.union acc t.sets.(i).elements) Iset.empty chosen
  in
  { chosen = List.sort_uniq Int.compare chosen; covered; weight = weight_of t covered }

let solve_greedy t ~k =
  let covered = ref Iset.empty in
  let chosen = ref [] in
  (try
     for _ = 1 to k do
       let best = ref None and best_gain = ref 0.0 in
       Array.iteri
         (fun i s ->
           let gain = weight_of t (Iset.diff s.elements !covered) in
           if gain > !best_gain then begin
             best_gain := gain;
             best := Some i
           end)
         t.sets;
       match !best with
       | Some i ->
         covered := Iset.union !covered t.sets.(i).elements;
         chosen := i :: !chosen
       | None -> raise Exit
     done
   with Exit -> ());
  solution_of t !chosen

let solve_exact ?(max_sets = 20) t ~k =
  let n = Array.length t.sets in
  if n > max_sets then invalid_arg "Max_coverage.solve_exact: too many sets";
  let best = ref (solution_of t []) in
  let rec go i chosen count =
    if i = n then begin
      let s = solution_of t chosen in
      if s.weight > !best.weight then best := s
    end
    else begin
      if count < k then go (i + 1) (i :: chosen) (count + 1);
      go (i + 1) chosen count
    end
  in
  go 0 [] 0;
  !best
