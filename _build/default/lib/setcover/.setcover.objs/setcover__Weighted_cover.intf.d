lib/setcover/weighted_cover.mli: Iset
