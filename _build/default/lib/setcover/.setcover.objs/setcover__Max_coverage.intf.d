lib/setcover/max_coverage.mli: Iset
