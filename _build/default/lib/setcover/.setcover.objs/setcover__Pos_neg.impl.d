lib/setcover/pos_neg.ml: Array Format Int Iset List Printf Red_blue
