lib/setcover/max_coverage.ml: Array Int Iset List Printf
