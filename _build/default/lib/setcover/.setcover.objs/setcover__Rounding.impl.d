lib/setcover/rounding.ml: Array Fun Iset List Lp Printf Red_blue
