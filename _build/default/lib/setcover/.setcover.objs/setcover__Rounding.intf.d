lib/setcover/rounding.mli: Red_blue
