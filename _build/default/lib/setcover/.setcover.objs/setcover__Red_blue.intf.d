lib/setcover/red_blue.mli: Format Iset
