lib/setcover/red_blue.ml: Array Float Format Fun Int Iset List Option Printf
