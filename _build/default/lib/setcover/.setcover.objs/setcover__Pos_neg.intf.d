lib/setcover/pos_neg.mli: Format Iset Red_blue
