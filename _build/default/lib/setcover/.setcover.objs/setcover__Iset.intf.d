lib/setcover/iset.mli: Format Stdlib
