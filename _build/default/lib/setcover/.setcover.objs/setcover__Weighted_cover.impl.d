lib/setcover/weighted_cover.ml: Array Float Fun Int Iset List Option Printf
