lib/setcover/iset.ml: Format Fun Int List Stdlib
