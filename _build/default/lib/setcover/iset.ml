include Stdlib.Set.Make (Int)

let of_range n = of_list (List.init n Fun.id)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (elements s)
