module SM = Map.Make (String)
module SS = Stdlib.Set.Make (String)

type t = {
  depth : int SM.t;
  parent : string option SM.t;
  roots : string list;
}

let primal_edges qs =
  List.fold_left
    (fun acc (q : Cq.Query.t) ->
      let rec pairs = function
        | (a : Cq.Atom.t) :: (b :: _ as rest) ->
          let e = if a.rel <= b.rel then (a.rel, b.rel) else (b.rel, a.rel) in
          e :: pairs rest
        | _ -> []
      in
      pairs q.body @ acc)
    [] qs
  |> List.sort_uniq compare

let vertices_of qs =
  List.fold_left
    (fun acc (q : Cq.Query.t) -> SS.union acc (SS.of_list (Cq.Query.relations q)))
    SS.empty qs

let of_queries ?root qs =
  let verts = vertices_of qs in
  let edges = primal_edges qs in
  if List.exists (fun (a, b) -> a = b) edges then None
  else
    let adj =
      List.fold_left
        (fun m (a, b) ->
          let add k v m = SM.update k (fun l -> Some (v :: Option.value ~default:[] l)) m in
          add a b (add b a m))
        SM.empty edges
    in
    let neighbours v = Option.value ~default:[] (SM.find_opt v adj) in
    (* BFS from a root; detect cycles: a visited neighbour that is not the
       BFS parent closes a cycle. *)
    let bfs root (depth, parent, visited) =
      let q = Queue.create () in
      Queue.add root q;
      let depth = ref (SM.add root 0 depth) in
      let parent = ref (SM.add root None parent) in
      let visited = ref (SS.add root visited) in
      let ok = ref true in
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        let dv = SM.find v !depth in
        let pv = SM.find v !parent in
        List.iter
          (fun w ->
            if Some w = pv then ()
            else if SS.mem w !visited then ok := false
            else begin
              visited := SS.add w !visited;
              depth := SM.add w (dv + 1) !depth;
              parent := SM.add w (Some v) !parent;
              Queue.add w q
            end)
          (neighbours v)
      done;
      (!ok, (!depth, !parent, !visited))
    in
    (* multi-edges between the same pair are collapsed by sort_uniq, but a
       pair connected by paths through different queries yields a cycle,
       which BFS detects. *)
    let candidates =
      match root with
      | Some r when SS.mem r verts -> r :: SS.elements (SS.remove r verts)
      | Some r -> invalid_arg ("Rel_tree.of_queries: unknown root " ^ r)
      | None -> SS.elements verts
    in
    let rec run roots state = function
      | [] -> Some (state, List.rev roots)
      | v :: rest ->
        let _, _, visited = state in
        if SS.mem v visited then run roots state rest
        else
          let ok, state = bfs v state in
          if ok then run (v :: roots) state rest else None
    in
    match run [] (SM.empty, SM.empty, SS.empty) candidates with
    | None -> None
    | Some ((depth, parent, _), roots) -> Some { depth; parent; roots }

let relations t = List.map fst (SM.bindings t.depth)
let roots t = t.roots

let depth t r =
  match SM.find_opt r t.depth with
  | Some d -> d
  | None -> raise Not_found

let parent t r = Option.join (SM.find_opt r t.parent)

let by_increasing_depth t =
  SM.bindings t.depth
  |> List.sort (fun (a, da) (b, db) ->
         if da <> db then Int.compare da db else String.compare a b)
  |> List.map fst

let pp ppf t =
  let row ppf (r, d) =
    Format.fprintf ppf "%s (depth %d%s)" r d
      (match parent t r with Some p -> ", parent " ^ p | None -> ", root")
  in
  Format.pp_print_list ~pp_sep:Format.pp_print_cut row ppf (SM.bindings t.depth)
