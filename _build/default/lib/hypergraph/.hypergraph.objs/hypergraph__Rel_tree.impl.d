lib/hypergraph/rel_tree.ml: Cq Format Int List Map Option Queue Stdlib String
