lib/hypergraph/hgraph.mli: Format Stdlib
