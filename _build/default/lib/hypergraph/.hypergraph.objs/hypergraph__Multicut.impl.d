lib/hypergraph/multicut.ml: Array Fun Hashtbl Int List Map Option Queue Stdlib String
