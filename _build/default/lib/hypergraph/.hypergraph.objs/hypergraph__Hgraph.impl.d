lib/hypergraph/hgraph.ml: Array Format Hashtbl Int List Option Stdlib String
