lib/hypergraph/rel_tree.mli: Cq Format
