lib/hypergraph/dual.mli: Cq Hgraph
