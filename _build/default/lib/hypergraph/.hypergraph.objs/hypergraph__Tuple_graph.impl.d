lib/hypergraph/tuple_graph.ml: List Option Queue Relational
