lib/hypergraph/tuple_graph.mli: Relational
