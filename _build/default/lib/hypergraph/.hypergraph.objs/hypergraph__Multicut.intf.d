lib/hypergraph/multicut.mli: Stdlib
