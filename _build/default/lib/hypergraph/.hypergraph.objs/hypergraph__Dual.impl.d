lib/hypergraph/dual.ml: Cq Hgraph List
