module S = Relational.Stuple

type t = {
  adj : S.Set.t S.Map.t;  (* vertex -> neighbour set; isolated vertices map to empty *)
}

let empty = { adj = S.Map.empty }

let add_vertex g v =
  if S.Map.mem v g.adj then g else { adj = S.Map.add v S.Set.empty g.adj }

let add_edge g a b =
  if S.equal a b then
    (* record the self-loop by making the vertex its own neighbour; forest
       detection treats it as a cycle *)
    let g = add_vertex g a in
    { adj = S.Map.add a (S.Set.add a (S.Map.find a g.adj)) g.adj }
  else
    let g = add_vertex (add_vertex g a) b in
    let adj =
      g.adj
      |> S.Map.add a (S.Set.add b (S.Map.find a g.adj))
      |> fun adj -> S.Map.add b (S.Set.add a (S.Map.find b adj)) adj
    in
    { adj }

let of_witness_paths paths =
  List.fold_left
    (fun g path ->
      match path with
      | [] -> g
      | [ v ] -> add_vertex g v
      | _ ->
        let rec go g = function
          | a :: (b :: _ as rest) -> go (add_edge g a b) rest
          | _ -> g
        in
        go g path)
    empty paths

let vertices g = List.map fst (S.Map.bindings g.adj)
let neighbours g v =
  match S.Map.find_opt v g.adj with
  | Some s -> S.Set.elements s
  | None -> []

let num_vertices g = S.Map.cardinal g.adj

let num_edges g =
  let double =
    S.Map.fold (fun v s acc -> acc + S.Set.cardinal s + (if S.Set.mem v s then 1 else 0)) g.adj 0
  in
  double / 2

module Rooted = struct
  type graph = t

  type t = {
    root : S.t;
    depth : int S.Map.t;
    parent : S.t option S.Map.t;
    order : S.t list;  (* BFS order *)
    children : S.t list S.Map.t;
  }

  let at (g : graph) root =
    if not (S.Map.mem root g.adj) then None
    else begin
      let q = Queue.create () in
      Queue.add root q;
      let depth = ref (S.Map.add root 0 S.Map.empty) in
      let parent = ref (S.Map.add root None S.Map.empty) in
      let order = ref [ root ] in
      let children = ref S.Map.empty in
      let ok = ref true in
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        let dv = S.Map.find v !depth in
        let pv = S.Map.find v !parent in
        S.Set.iter
          (fun w ->
            if Some w = pv then ()
            else if S.Map.mem w !depth then ok := false
            else begin
              depth := S.Map.add w (dv + 1) !depth;
              parent := S.Map.add w (Some v) !parent;
              children :=
                S.Map.update v
                  (fun l -> Some (w :: Option.value ~default:[] l))
                  !children;
              order := w :: !order;
              Queue.add w q
            end)
          (S.Map.find v g.adj)
      done;
      if !ok then
        Some
          {
            root;
            depth = !depth;
            parent = !parent;
            order = List.rev !order;
            children = !children;
          }
      else None
    end

  let root t = t.root
  let mem t v = S.Map.mem v t.depth

  let depth t v =
    match S.Map.find_opt v t.depth with
    | Some d -> d
    | None -> raise Not_found

  let parent t v = Option.join (S.Map.find_opt v t.parent)
  let children t v = Option.value ~default:[] (S.Map.find_opt v t.children)

  let path_set t v =
    let rec go acc v =
      let acc = S.Set.add v acc in
      match parent t v with
      | Some p -> go acc p
      | None -> acc
    in
    if mem t v then go S.Set.empty v
    else invalid_arg "Tuple_graph.Rooted.path_set: vertex not in component"

  let by_increasing_depth t = t.order
end

let is_forest g =
  (* every component acyclic: attempt BFS rooting from every unvisited vertex *)
  let visited = ref S.Set.empty in
  let rec go = function
    | [] -> true
    | v :: rest ->
      if S.Set.mem v !visited then go rest
      else (
        match Rooted.at g v with
        | None -> false
        | Some r ->
          List.iter (fun u -> visited := S.Set.add u !visited) (Rooted.by_increasing_depth r);
          go rest)
  in
  go (vertices g)

let find_pivot g witnesses =
  match witnesses with
  | [] -> (match vertices g with v :: _ -> Some v | [] -> None)
  | w0 :: rest ->
    let candidates = List.fold_left S.Set.inter w0 rest in
    let check_candidate c =
      match Rooted.at g c with
      | None -> false
      | Some r ->
        List.for_all
          (fun w ->
            (* the endpoint is the deepest tuple of the witness; the witness
               must equal the root path to it *)
            S.Set.for_all (fun v -> Rooted.mem r v) w
            &&
            let endpoint =
              S.Set.fold
                (fun v best ->
                  match best with
                  | None -> Some v
                  | Some b -> if Rooted.depth r v > Rooted.depth r b then Some v else best)
                w None
            in
            match endpoint with
            | None -> false
            | Some e -> S.Set.equal (Rooted.path_set r e) w)
          witnesses
    in
    S.Set.elements candidates |> List.find_opt check_candidate
