(** Rooted forests over relation symbols.

    Algorithm 1 ("pick any table as the beginning such that the root of
    trees is tuples contained in this table", then process tuples "in
    increasing depth with respect to roots") needs a rooted tree on the
    relations. We build the primal graph on relation symbols — an
    undirected edge between the relations of consecutive body atoms of
    each query — and root each connected component. The construction
    fails ([None]) when that graph is not a forest (multi-edges between
    distinct relations are collapsed; a self-loop from a self-join makes
    the input non-forest). *)

type t

(** [of_queries ?root qs] — [root], when given, must be a relation of the
    graph and is used as the root of its component; other components are
    rooted at their lexicographically smallest relation. *)
val of_queries : ?root:string -> Cq.Query.t list -> t option

val relations : t -> string list
val roots : t -> string list

(** Depth of a relation below its component root (root = 0).
    Raises [Not_found] for unknown relations. *)
val depth : t -> string -> int

val parent : t -> string -> string option

(** Relations sorted by increasing depth (ties broken by name) — the
    processing order of Algorithm 1. *)
val by_increasing_depth : t -> string list

val pp : Format.formatter -> t -> unit
