type edge = {
  u : string;
  v : string;
  cost : float;
}

type result = {
  cut : edge list;
  cost : float;
  dual_value : float;
}

type error =
  | Not_a_tree
  | Unknown_vertex of string
  | Nonpositive_cost

module SM = Map.Make (String)
module SS = Stdlib.Set.Make (String)

(* rooted representation: parent pointers + depth, with the edge to the
   parent identified by the child vertex *)
type rooted = {
  parent : string SM.t;
  depth : int SM.t;
  edge_cost : float SM.t;  (* child vertex -> cost of edge to parent *)
  edge_def : edge SM.t;    (* child vertex -> original edge *)
}

let build_tree edges =
  if List.exists (fun (e : edge) -> e.cost <= 0.0) edges then Error Nonpositive_cost
  else begin
    let adj =
      List.fold_left
        (fun m (e : edge) ->
          let add k v m = SM.update k (fun l -> Some (v :: Option.value ~default:[] l)) m in
          add e.u (e.v, e) (add e.v (e.u, e) m))
        SM.empty edges
    in
    let vertices = SM.fold (fun v _ acc -> SS.add v acc) adj SS.empty in
    if SS.is_empty vertices then
      Ok ({ parent = SM.empty; depth = SM.empty; edge_cost = SM.empty; edge_def = SM.empty }, vertices)
    else begin
      let root = SS.min_elt vertices in
      let q = Queue.create () in
      Queue.add root q;
      let depth = ref (SM.singleton root 0) in
      let parent = ref SM.empty in
      let edge_cost = ref SM.empty in
      let edge_def = ref SM.empty in
      let seen = ref (SS.singleton root) in
      let ok = ref true in
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        List.iter
          (fun ((w : string), (e : edge)) ->
            if SM.find_opt w !parent = Some v || w = v then ()
            else if Some w = SM.find_opt v !parent then ()
            else if SS.mem w !seen then ok := false
            else begin
              seen := SS.add w !seen;
              parent := SM.add w v !parent;
              depth := SM.add w (SM.find v !depth + 1) !depth;
              edge_cost := SM.add w e.cost !edge_cost;
              edge_def := SM.add w e !edge_def;
              Queue.add w q
            end)
          (Option.value ~default:[] (SM.find_opt v adj))
      done;
      if (not !ok) || not (SS.equal !seen vertices) then Error Not_a_tree
      else
        Ok
          ( { parent = !parent; depth = !depth; edge_cost = !edge_cost; edge_def = !edge_def },
            vertices )
    end
  end

(* path between two vertices, as the list of child-vertices identifying
   the edges; also returns the lca *)
let path (t : rooted) a b =
  let rec lift v d target =
    if d > target then lift (SM.find v t.parent) (d - 1) target else v
  in
  let da = SM.find a t.depth and db = SM.find b t.depth in
  let a', b' = (lift a da (min da db), lift b db (min da db)) in
  let rec climb x y acc_x acc_y =
    if x = y then (x, acc_x, acc_y)
    else climb (SM.find x t.parent) (SM.find y t.parent) (x :: acc_x) (y :: acc_y)
  in
  let lca, up_a, up_b = climb a' b' [] [] in
  let prefix v stop =
    let rec go v acc = if v = stop then acc else go (SM.find v t.parent) (v :: acc) in
    go v []
  in
  (lca, prefix a a' @ List.rev up_a @ up_b @ List.rev (prefix b b'))

let check_pairs vertices pairs =
  List.fold_left
    (fun acc (a, b) ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if not (SS.mem a vertices) then Error (Unknown_vertex a)
        else if not (SS.mem b vertices) then Error (Unknown_vertex b)
        else if a = b then invalid_arg "Multicut: pair with equal endpoints"
        else Ok ())
    (Ok ()) pairs

let solve ~edges ~pairs =
  match build_tree edges with
  | Error e -> Error e
  | Ok (t, vertices) -> (
    match check_pairs vertices pairs with
    | Error e -> Error e
    | Ok () ->
      (* annotate pairs with lca depth; process deepest first *)
      let annotated =
        List.map
          (fun (a, b) ->
            let lca, p = path t a b in
            (SM.find lca t.depth, p, (a, b)))
          pairs
      in
      let ordered =
        List.sort (fun (da, _, _) (db, _, _) -> Int.compare db da) annotated
      in
      let used = Hashtbl.create 16 in
      let headroom child =
        SM.find child t.edge_cost
        -. Option.value ~default:0.0 (Hashtbl.find_opt used child)
      in
      let chosen = ref [] in
      let dual = ref 0.0 in
      List.iter
        (fun (_, p, _) ->
          if not (List.exists (fun c -> List.mem c !chosen) p) then begin
            let delta = List.fold_left (fun acc c -> min acc (headroom c)) infinity p in
            dual := !dual +. delta;
            List.iter
              (fun c ->
                Hashtbl.replace used c
                  (delta +. Option.value ~default:0.0 (Hashtbl.find_opt used c)))
              p;
            List.iter (fun c -> if headroom c <= 1e-9 && not (List.mem c !chosen) then chosen := c :: !chosen) p
          end)
        ordered;
      (* reverse delete *)
      let still_cut cut =
        List.for_all (fun (_, p, _) -> List.exists (fun c -> List.mem c cut) p) ordered
      in
      let final =
        (* reverse order of addition: !chosen is already most-recent-first *)
        List.fold_left
          (fun kept c ->
            let without = List.filter (fun x -> x <> c) kept in
            if still_cut without then without else kept)
          !chosen !chosen
      in
      let cut = List.map (fun c -> SM.find c t.edge_def) final in
      let cost = List.fold_left (fun acc (e : edge) -> acc +. e.cost) 0.0 cut in
      Ok { cut; cost; dual_value = !dual })

let solve_exact ?(max_edges = 20) ~pairs edges =
  match build_tree edges with
  | Error e -> Error e
  | Ok (t, vertices) -> (
    match check_pairs vertices pairs with
    | Error e -> Error e
    | Ok () ->
      let n = List.length edges in
      if n > max_edges then invalid_arg "Multicut.solve_exact: too many edges";
      let paths = List.map (fun (a, b) -> snd (path t a b)) pairs in
      let children = Array.of_list (SM.bindings t.edge_def) in
      let best = ref None in
      for mask = 0 to (1 lsl Array.length children) - 1 do
        let cut_children =
          List.init (Array.length children) Fun.id
          |> List.filter (fun i -> mask land (1 lsl i) <> 0)
          |> List.map (fun i -> fst children.(i))
        in
        if List.for_all (fun p -> List.exists (fun c -> List.mem c cut_children) p) paths
        then begin
          let cost =
            List.fold_left (fun acc c -> acc +. SM.find c t.edge_cost) 0.0 cut_children
          in
          match !best with
          | Some (bc, _) when bc <= cost -> ()
          | _ -> best := Some (cost, cut_children)
        end
      done;
      (match !best with
      | Some (cost, cut_children) ->
        Ok
          {
            cut = List.map (fun c -> SM.find c t.edge_def) cut_children;
            cost;
            dual_value = cost;
          }
      | None -> assert false (* cutting every edge always works *)))
