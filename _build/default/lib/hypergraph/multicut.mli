(** Multicut on trees (Garg–Vazirani–Yannakakis [25]) — the primal-dual
    algorithm Algorithm 1 of the paper is modeled on, provided as a
    standalone substrate with both the 2-approximation and an exact
    solver for validation.

    Input: an undirected tree with positive edge costs and terminal
    pairs; output: a minimum-cost edge set disconnecting every pair.
    The primal-dual processes vertices bottom-up (deepest LCA first),
    routes flow (dual) per pair until an edge saturates, picks saturated
    edges, and reverse-deletes — exactly the shape of [PrimeDualVSE]. *)

type edge = {
  u : string;
  v : string;
  cost : float;
}

type result = {
  cut : edge list;
  cost : float;
  dual_value : float;   (** Σ flows: a lower bound on the optimum *)
}

type error =
  | Not_a_tree
  | Unknown_vertex of string
  | Nonpositive_cost

(** The Garg–Vazirani 2-approximation. Pairs with equal endpoints are
    rejected as [Unknown_vertex]-free but undisconnectable — they raise
    [Invalid_argument]. *)
val solve :
  edges:edge list -> pairs:(string * string) list -> (result, error) Stdlib.result

(** Exact minimum by subset enumeration; [max_edges] (default 20) guards
    the blowup. The tree's edges are the positional argument. *)
val solve_exact :
  ?max_edges:int ->
  pairs:(string * string) list ->
  edge list ->
  (result, error) Stdlib.result
