(** The data dual graph (§IV.E): an undirected graph whose vertices are
    source tuples, with each view tuple's witness contributing a path.

    The "forest case with pivot tuple" requires: the graph is a forest and
    there is a pivot tuple [t] such that every view tuple's witness is
    exactly the set of tuples on the path from [t] to some tuple. This
    module builds the graph from witness paths, tests forest-ness, roots
    trees, and detects pivots. *)

module S := Relational.Stuple

type t

val empty : t
val add_vertex : t -> S.t -> t
val add_edge : t -> S.t -> S.t -> t

(** Each witness is added as a path: consecutive elements become edges
    (single-tuple witnesses add an isolated vertex). *)
val of_witness_paths : S.t list list -> t

val vertices : t -> S.t list
val neighbours : t -> S.t -> S.t list
val num_vertices : t -> int
val num_edges : t -> int

(** No cycles (multi-edges are collapsed; self-loops make it cyclic). *)
val is_forest : t -> bool

(** A rooting of one connected component. *)
module Rooted : sig
  type graph := t
  type t

  (** [at g root] — BFS rooting of [root]'s component. [None] if the
      component contains a cycle. *)
  val at : graph -> S.t -> t option

  val root : t -> S.t
  val mem : t -> S.t -> bool
  val depth : t -> S.t -> int
  val parent : t -> S.t -> S.t option
  val children : t -> S.t -> S.t list

  (** Tuples on the path from the root to [v], inclusive. *)
  val path_set : t -> S.t -> S.Set.t

  (** Vertices of the component in BFS (increasing-depth) order. *)
  val by_increasing_depth : t -> S.t list
end

(** [find_pivot graph witnesses] — a tuple [t] such that the graph is a
    forest and every witness in [witnesses] equals the tuple set of the
    path from [t] to some vertex. Candidates are tuples common to all
    witnesses, as the pivot lies on every path. Returns the first pivot
    found. *)
val find_pivot : t -> S.Set.t list -> S.t option
