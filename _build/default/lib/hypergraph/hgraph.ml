module Vset = Stdlib.Set.Make (String)

type edge = {
  label : string;
  vertices : Vset.t;
}

type t = {
  vertices : Vset.t;
  edges : edge list;
}

let make ?(vertices = []) ~edges () =
  let edges =
    List.map (fun (label, vs) -> { label; vertices = Vset.of_list vs }) edges
  in
  let all =
    List.fold_left
      (fun acc (e : edge) -> Vset.union acc e.vertices)
      (Vset.of_list vertices) edges
  in
  let labels = List.map (fun e -> e.label) edges in
  if List.length labels <> List.length (List.sort_uniq String.compare labels) then
    invalid_arg "Hgraph.make: duplicate edge labels";
  { vertices = all; edges }

let vertices g = g.vertices
let edges g = g.edges
let num_vertices g = Vset.cardinal g.vertices
let num_edges g = List.length g.edges

(* ---- connected components (union-find over vertices) ---- *)

let components g =
  let parent = Hashtbl.create 16 in
  let rec find v =
    match Hashtbl.find_opt parent v with
    | None | Some None -> v
    | Some (Some p) ->
      let root = find p in
      Hashtbl.replace parent v (Some root);
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra (Some rb)
  in
  Vset.iter (fun v -> Hashtbl.replace parent v None) g.vertices;
  List.iter
    (fun (e : edge) ->
      match Vset.elements e.vertices with
      | [] -> ()
      | v0 :: rest -> List.iter (union v0) rest)
    g.edges;
  let groups = Hashtbl.create 16 in
  Vset.iter
    (fun v ->
      let r = find v in
      let cur = Option.value ~default:Vset.empty (Hashtbl.find_opt groups r) in
      Hashtbl.replace groups r (Vset.add v cur))
    g.vertices;
  Hashtbl.fold
    (fun _ vs acc ->
      let es = List.filter (fun (e : edge) -> not (Vset.disjoint e.vertices vs)) g.edges in
      { vertices = vs; edges = es } :: acc)
    groups []

(* ---- GYO reduction ---- *)

(* Runs the reduction; returns the surviving (reduced) edges and, for each
   eliminated edge, its recorded parent label (None for the last edge of a
   component). *)
let gyo g =
  (* work on mutable copies of the vertex sets *)
  let work = Array.of_list (List.map (fun e -> (e.label, ref e.vertices, ref true)) g.edges) in
  let parents = Hashtbl.create 16 in
  let alive () =
    Array.to_list work |> List.filter (fun (_, _, live) -> !live)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Rule 1: drop vertices occurring in at most one live edge *)
    let occurrences = Hashtbl.create 16 in
    List.iter
      (fun (_, vs, _) ->
        Vset.iter
          (fun v ->
            Hashtbl.replace occurrences v (1 + Option.value ~default:0 (Hashtbl.find_opt occurrences v)))
          !vs)
      (alive ());
    List.iter
      (fun (_, vs, _) ->
        let reduced =
          Vset.filter (fun v -> Option.value ~default:0 (Hashtbl.find_opt occurrences v) > 1) !vs
        in
        if not (Vset.equal reduced !vs) then begin
          vs := reduced;
          changed := true
        end)
      (alive ());
    (* Rule 2: drop an edge contained in another live edge *)
    let live = alive () in
    let try_remove (label, vs, liveflag) =
      let container =
        List.find_opt
          (fun (label', vs', _) -> label' <> label && Vset.subset !vs !vs')
          live
      in
      match container with
      | Some (label', _, _) ->
        Hashtbl.replace parents label (Some label');
        liveflag := false;
        changed := true;
        true
      | None ->
        if Vset.is_empty !vs then begin
          (* empty edge: eliminated as a component root *)
          Hashtbl.replace parents label None;
          liveflag := false;
          changed := true;
          true
        end
        else false
    in
    (* remove at most one edge per pass to keep parent bookkeeping sound *)
    ignore (List.exists try_remove live)
  done;
  (alive (), parents)

let is_acyclic g =
  let survivors, _ = gyo g in
  survivors = []

(* β-acyclicity by nest-point elimination: a vertex is a nest point when
   the edges containing it form a chain under inclusion; repeatedly remove
   nest points (and then empty edges); β-acyclic iff all vertices get
   eliminated. *)
let is_beta_acyclic g =
  let edges = ref (List.map (fun (e : edge) -> e.vertices) g.edges) in
  let verts = ref g.vertices in
  let is_chain sets =
    let sorted = List.sort (fun a b -> Int.compare (Vset.cardinal a) (Vset.cardinal b)) sets in
    let rec go = function
      | a :: (b :: _ as rest) -> Vset.subset a b && go rest
      | _ -> true
    in
    go sorted
  in
  let progress = ref true in
  while !progress && not (Vset.is_empty !verts) do
    progress := false;
    let nest =
      Vset.elements !verts
      |> List.find_opt (fun v ->
             is_chain (List.filter (fun e -> Vset.mem v e) !edges))
    in
    match nest with
    | Some v ->
      verts := Vset.remove v !verts;
      edges :=
        List.filter_map
          (fun e ->
            let e = Vset.remove v e in
            if Vset.is_empty e then None else Some e)
          !edges;
      progress := true
    | None -> ()
  done;
  Vset.is_empty !verts

let is_forest = is_beta_acyclic

(* γ-cycle search: DFS over sequences of distinct edges linked by distinct
   vertices, where every linking vertex except the closing one is private
   to its consecutive pair within the sequence. Exponential in the number
   of edges; inputs here are query sets. *)
let is_gamma_acyclic g =
  let edges = Array.of_list (List.map (fun (e : edge) -> e.vertices) g.edges) in
  let n = Array.length edges in
  let exception Found in
  (* seq: list of (edge index, linking vertex to the NEXT element) built in
     reverse; [first] is the start edge we must close back to. *)
  let rec extend first used_edges used_verts seq_rev len last =
    (* try to close the cycle: a vertex x in last ∩ first, distinct from
       used vertices — no privacy restriction on the closing vertex *)
    if len >= 3 then begin
      let closing = Vset.diff (Vset.inter edges.(last) edges.(first)) used_verts in
      if not (Vset.is_empty closing) then raise Found
    end;
    (* extend with a new edge via a private vertex *)
    for next = 0 to n - 1 do
      if not (List.mem next used_edges) then begin
        let shared = Vset.diff (Vset.inter edges.(last) edges.(next)) used_verts in
        Vset.iter
          (fun x ->
            (* privacy: x occurs in no other edge of the sequence so far
               (and none we may add later — checked incrementally: we only
               require privacy w.r.t. the final sequence, so enforce
               against current members and re-check when closing; for
               simplicity enforce against current members and forbid
               adding edges containing earlier private vertices) *)
            let private_here =
              List.for_all
                (fun e -> e = last || e = next || not (Vset.mem x edges.(e)))
                (next :: used_edges)
            in
            let new_edge_ok =
              (* the new edge must not contain any earlier private vertex *)
              List.for_all (fun v -> not (Vset.mem v edges.(next))) (List.map snd seq_rev)
            in
            if private_here && new_edge_ok then
              extend first (next :: used_edges) (Vset.add x used_verts)
                ((last, x) :: seq_rev) (len + 1) next)
          shared
      end
    done
  in
  try
    for first = 0 to n - 1 do
      extend first [ first ] Vset.empty [] 1 first
    done;
    true
  with Found -> false

let is_berge_acyclic g =
  (* incidence bipartite graph must be a forest: for a connected bipartite
     graph with V vertices, E edges and I incidences, forest <=> I <=
     V + E - #components; check per component via union-find cycle test *)
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None -> x
    | Some p ->
      let r = find p in
      Hashtbl.replace parent x r;
      r
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra = rb then false
    else begin
      Hashtbl.replace parent ra rb;
      true
    end
  in
  List.for_all
    (fun (e : edge) ->
      Vset.for_all (fun v -> union ("v:" ^ v) ("e:" ^ e.label)) e.vertices)
    g.edges

let join_forest g =
  let survivors, parents = gyo g in
  if survivors <> [] then None
  else
    Some
      (List.map
         (fun (e : edge) ->
           match Hashtbl.find_opt parents e.label with
           | Some p -> (e.label, p)
           | None -> (e.label, None))
         g.edges)

let pp ppf g =
  let pp_edge ppf e =
    Format.fprintf ppf "%s = {%a}" e.label
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_string)
      (Vset.elements e.vertices)
  in
  Format.fprintf ppf "@[<v>vertices: {%a}@ %a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    (Vset.elements g.vertices)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_edge)
    g.edges
