(** Hypergraphs over string vertices, with the GYO reduction.

    Used for the dual hypergraph of a query set (§IV.B): vertices are
    relation symbols, one hyperedge per query. *)

module Vset : Stdlib.Set.S with type elt = string

type edge = {
  label : string;        (** e.g. the contributing query's name *)
  vertices : Vset.t;
}

type t

(** [make ~vertices ~edges] — vertices of the edges are added
    automatically; [vertices] may list extra isolated vertices. *)
val make : ?vertices:string list -> edges:(string * string list) list -> unit -> t

val vertices : t -> Vset.t
val edges : t -> edge list
val num_vertices : t -> int
val num_edges : t -> int

(** Connected components (two vertices connected when some edge contains
    both), each returned as a sub-hypergraph. Isolated vertices form
    singleton components. *)
val components : t -> t list

(** GYO (Graham / Yu–Ozsoyoglu) reduction: repeatedly delete "ear"
    vertices contained in at most one edge and edges contained in another
    edge. [is_acyclic g] holds iff the reduction empties every edge —
    α-acyclicity, the paper's "every connected component is a hypertree"
    forest condition. *)
val is_acyclic : t -> bool

(** β-acyclicity: every sub-hypergraph (subset of edges) is α-acyclic,
    decided in polynomial time by nest-point elimination. This is the
    notion matching the paper's Fig. 3 "hypertree" classification
    (its query set [Q1] — a triangle of binary edges under one ternary
    edge — is α-acyclic but {e not} a hypertree, and indeed not
    β-acyclic). *)
val is_beta_acyclic : t -> bool

(** [is_forest g] = every connected component is a hypertree in the
    paper's sense, i.e. {!is_beta_acyclic} (nest-point elimination runs
    componentwise). *)
val is_forest : t -> bool

(** γ-acyclicity (Fagin [23]): no γ-cycle — a sequence
    [(S1, x1, S2, x2, ..., Sm, xm, S1)] of ≥ 3 distinct edges and
    distinct vertices with [xi ∈ Si ∩ Si+1], where every [xi] except the
    last occurs in {e no other} edge of the sequence. Decided by bounded
    DFS — fine at query scale (≤ ~12 edges), not for large hypergraphs.
    Strictly between β-acyclicity and Berge-acyclicity:
    [{ab, bc, abc}] is β- but not γ-acyclic; [{ab, abc}] is γ- but not
    Berge-acyclic. *)
val is_gamma_acyclic : t -> bool

(** Berge-acyclicity: the vertex–edge incidence graph is a forest —
    equivalently, no two edges share two vertices and the edge
    intersection structure is a tree. The strictest of Fagin's
    degrees. *)
val is_berge_acyclic : t -> bool

(** A join tree: one node per hyperedge, such that for every vertex the
    nodes containing it form a subtree. [None] when the hypergraph is
    cyclic. Singleton edges yield singleton trees; the result is a forest,
    one tree per component, as (edge_label, parent_label option) rows. *)
val join_forest : t -> (string * string option) list option

val pp : Format.formatter -> t -> unit
