(** The dual hypergraph [H(Q)] of a query set (§IV.B): one vertex per
    relation symbol, one hyperedge per query consisting of the relations in
    its body. The "forest case" of the paper is: every connected component
    of [H(Q)] is a hypertree (α-acyclic). *)

val of_queries : Cq.Query.t list -> Hgraph.t

(** [is_forest_case qs] — the paper's forest condition on [H(Q)]. *)
val is_forest_case : Cq.Query.t list -> bool
