let of_queries qs =
  let edges = List.map (fun (q : Cq.Query.t) -> (q.name, Cq.Query.relations q)) qs in
  Hgraph.make ~edges ()

let is_forest_case qs = Hgraph.is_forest (of_queries qs)
