type homomorphism = (string * Term.t) list

module Env = Map.Make (String)

(* extend θ with var -> term; None on clash *)
let bind env v t =
  match Env.find_opt v env with
  | Some t' -> if Term.equal t t' then Some env else None
  | None -> Some (Env.add v t env)

(* map a source term under θ onto a required target term *)
let match_term env src target =
  match src with
  | Term.Const c -> (
    match target with
    | Term.Const c' when Relational.Value.equal c c' -> Some env
    | _ -> None)
  | Term.Var v -> bind env v target

let match_atom env (src : Atom.t) (target : Atom.t) =
  if src.rel <> target.rel || Atom.arity src <> Atom.arity target then None
  else
    let n = Atom.arity src in
    let rec go i env =
      if i = n then Some env
      else
        match match_term env src.args.(i) target.args.(i) with
        | Some env -> go (i + 1) env
        | None -> None
    in
    go 0 env

let homomorphism ~from:(q2 : Query.t) ~into:(q1 : Query.t) =
  if List.length q2.head <> List.length q1.head then None
  else
    (* head correspondence first *)
    let env0 =
      List.fold_left2
        (fun env src target ->
          Option.bind env (fun env -> match_term env src target))
        (Some Env.empty) q2.head q1.head
    in
    match env0 with
    | None -> None
    | Some env0 ->
      let targets = Array.of_list q1.body in
      let rec go env = function
        | [] -> Some env
        | atom :: rest ->
          let n = Array.length targets in
          let rec try_target i =
            if i = n then None
            else
              match match_atom env atom targets.(i) with
              | Some env' -> (
                match go env' rest with
                | Some r -> Some r
                | None -> try_target (i + 1))
              | None -> try_target (i + 1)
          in
          try_target 0
      in
      go env0 q2.body
      |> Option.map (fun env -> Env.bindings env)

let contained q1 q2 = Option.is_some (homomorphism ~from:q2 ~into:q1)

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let safe (q : Query.t) =
  let bv =
    List.fold_left (fun acc a -> Term.Vars.union acc (Atom.var_set a)) Term.Vars.empty q.body
  in
  Term.Vars.subset (Query.head_vars q) bv && q.body <> []

let minimize (q : Query.t) =
  (* greedily drop atoms while an equivalence-preserving homomorphism
     exists into the reduced query *)
  let rec go (current : Query.t) =
    let try_drop i =
      let body' = List.filteri (fun j _ -> j <> i) current.body in
      let candidate = { current with Query.body = body' } in
      if safe candidate && Option.is_some (homomorphism ~from:current ~into:candidate) then
        Some candidate
      else None
    in
    let n = List.length current.body in
    let rec scan i =
      if i = n then current
      else
        match try_drop i with
        | Some smaller -> go smaller
        | None -> scan (i + 1)
    in
    scan 0
  in
  go q

let dedupe qs =
  List.fold_left
    (fun kept q ->
      if List.exists (fun q' -> equivalent q q') kept then kept else q :: kept)
    [] qs
  |> List.rev
