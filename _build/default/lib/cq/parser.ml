exception Parse_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

type token =
  | Ident of string
  | Num of int
  | Quoted of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\r' | '\n' -> go (i + 1) acc
      | '#' -> List.rev acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | ':' ->
        if i + 1 < n && s.[i + 1] = '-' then go (i + 2) (Turnstile :: acc)
        else fail "expected '-' after ':'"
      | '\'' ->
        let rec find j = if j >= n then fail "unterminated quote" else if s.[j] = '\'' then j else find (j + 1) in
        let j = find (i + 1) in
        go (j + 1) (Quoted (String.sub s (i + 1) (j - i - 1)) :: acc)
      | c when (c >= '0' && c <= '9') || c = '-' ->
        let rec find j = if j < n && s.[j] >= '0' && s.[j] <= '9' then find (j + 1) else j in
        let j = find (i + 1) in
        if j = i + 1 && c = '-' then fail "stray '-'"
        else go j (Num (int_of_string (String.sub s i (j - i))) :: acc)
      | c when (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' ->
        let is_ident_char c =
          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
        in
        let rec find j = if j < n && is_ident_char s.[j] then find (j + 1) else j in
        let j = find (i + 1) in
        go j (Ident (String.sub s i (j - i)) :: acc)
      | c -> fail "unexpected character %c" c
  in
  go 0 []

let is_variable name =
  name <> "" && ((name.[0] >= 'A' && name.[0] <= 'Z') || name.[0] = '_')

let term_of_token = function
  | Ident name when is_variable name -> Term.var name
  | Ident name -> Term.str name
  | Num i -> Term.int i
  | Quoted s -> Term.str s
  | Lparen | Rparen | Comma | Turnstile -> fail "expected a term"

(* name(t1, ..., tk) — returns (name, terms, rest) *)
let parse_applied = function
  | Ident name :: Lparen :: rest ->
    let rec args acc = function
      | Rparen :: rest when acc = [] -> (List.rev acc, rest)
      | tok :: rest -> (
        let t = term_of_token tok in
        match rest with
        | Comma :: rest -> args (t :: acc) rest
        | Rparen :: rest -> (List.rev (t :: acc), rest)
        | _ -> fail "expected ',' or ')' in argument list of %s" name)
      | [] -> fail "unterminated argument list of %s" name
    in
    let terms, rest = args [] rest in
    if terms = [] then fail "%s: empty argument list" name;
    (name, terms, rest)
  | Ident name :: _ -> fail "expected '(' after %s" name
  | _ -> fail "expected an identifier"

let query_of_string s =
  let tokens = tokenize s in
  let name, head, rest = parse_applied tokens in
  (match rest with
  | Turnstile :: _ -> ()
  | _ -> fail "expected ':-' after head of %s" name);
  let rest = List.tl rest in
  let rec atoms acc rest =
    let rel, terms, rest = parse_applied rest in
    let atom = Atom.make rel terms in
    match rest with
    | [] -> List.rev (atom :: acc)
    | Comma :: rest -> atoms (atom :: acc) rest
    | _ -> fail "expected ',' or end of input after atom %s" rel
  in
  let body = atoms [] rest in
  Query.make ~name ~head ~body

let queries_of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None else Some (query_of_string line))

let queries_of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  queries_of_string s
