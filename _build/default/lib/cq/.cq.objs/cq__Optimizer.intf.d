lib/cq/optimizer.mli: Query Relational
