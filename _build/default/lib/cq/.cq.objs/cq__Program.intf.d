lib/cq/program.mli: Format Query Relational Stdlib Ucq
