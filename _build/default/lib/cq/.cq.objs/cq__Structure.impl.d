lib/cq/structure.ml: Array Atom Hashtbl List Option Query Queue Relational Term
