lib/cq/lineage.ml: Array Atom Eval Format List Query Relational String Term
