lib/cq/sql.mli: Format Query Relational Stdlib
