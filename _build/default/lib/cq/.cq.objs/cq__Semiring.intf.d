lib/cq/semiring.mli: Format Query Relational
