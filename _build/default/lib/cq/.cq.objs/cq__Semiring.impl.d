lib/cq/semiring.ml: Array Eval Float Format List Relational
