lib/cq/eval.mli: Query Relational
