lib/cq/eval.ml: Array Atom Fun List Map Option Plan Query Relational String Term
