lib/cq/classify.ml: Atom Format List Query String Term
