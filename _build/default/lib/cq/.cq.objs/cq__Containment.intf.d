lib/cq/containment.mli: Query Term
