lib/cq/term.ml: Format Relational Set Stdlib String
