lib/cq/classify.mli: Atom Format Query Relational
