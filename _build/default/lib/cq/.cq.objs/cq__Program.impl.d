lib/cq/program.ml: Array Atom Containment Format Hashtbl List Map Option Printf Query Relational String Term Ucq
