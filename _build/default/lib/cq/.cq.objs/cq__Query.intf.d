lib/cq/query.mli: Atom Format Relational Term
