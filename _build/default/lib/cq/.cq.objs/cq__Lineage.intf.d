lib/cq/lineage.mli: Format Query Relational
