lib/cq/optimizer.ml: Array Atom Float Fun Hashtbl List Query Relational Term
