lib/cq/ucq.ml: Array Eval Format Lineage List Option Printf Query Relational
