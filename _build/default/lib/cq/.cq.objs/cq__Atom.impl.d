lib/cq/atom.ml: Array Format Hashtbl Int List Printf Relational String Term
