lib/cq/sql.ml: Atom Format Hashtbl List Printf Query Relational String Term
