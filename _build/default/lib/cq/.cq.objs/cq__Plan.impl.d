lib/cq/plan.ml: Array Atom Fun List Optimizer Query Relational Term
