lib/cq/query.ml: Array Atom Format Hashtbl List Option String Term
