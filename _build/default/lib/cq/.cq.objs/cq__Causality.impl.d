lib/cq/causality.ml: Array Eval Float Lineage List Printf Relational
