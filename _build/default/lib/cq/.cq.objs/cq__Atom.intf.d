lib/cq/atom.mli: Format Relational Term
