lib/cq/maintain.ml: Atom Eval Hashtbl List Option Query Relational Term
