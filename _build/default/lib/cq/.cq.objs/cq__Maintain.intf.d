lib/cq/maintain.mli: Query Relational
