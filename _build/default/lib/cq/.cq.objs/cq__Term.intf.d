lib/cq/term.mli: Format Relational Stdlib
