lib/cq/causality.mli: Query Relational
