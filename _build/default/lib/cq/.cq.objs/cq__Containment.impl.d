lib/cq/containment.ml: Array Atom List Map Option Query Relational String Term
