lib/cq/structure.mli: Atom Query Relational Term
