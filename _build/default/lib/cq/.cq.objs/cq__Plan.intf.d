lib/cq/plan.mli: Query Relational
