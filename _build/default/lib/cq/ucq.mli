(** Unions of conjunctive queries — the Select-Project-Join-Union
    fragment of the paper's related-work landscape ([14], [15] study
    annotation/deletion propagation for SPJU views).

    A UCQ view is a named union of same-arity CQ disjuncts. An answer may
    be derived by several disjuncts at once; killing it requires hitting
    {e every} witness of {e every} deriving disjunct, so the
    unique-witness machinery of key-preserving single CQs does not apply
    — propagation here runs under ground-truth semantics with an exact
    (exponential, example-scale) solver. *)

type t = private {
  name : string;
  disjuncts : Query.t list;   (** non-empty, equal head arity *)
}

(** Raises [Invalid_argument] on empty or arity-mismatched disjuncts. *)
val make : name:string -> Query.t list -> t

val arity : t -> int

val check : Relational.Schema.Db.t -> t -> unit

(** The union of the disjuncts' answers. *)
val evaluate : Relational.Instance.t -> t -> Relational.Tuple.Set.t

(** All witnesses of an answer across all disjuncts. *)
val why : Relational.Instance.t -> t -> Relational.Tuple.t -> Relational.Stuple.Set.t list

type outcome = {
  deletion : Relational.Stuple.Set.t;
  killed : (string * Relational.Tuple.t) list;   (** view answers eliminated *)
  side_effect : int;                             (** non-ΔV answers among [killed] *)
}

(** Exact minimum-view-side-effect deletion propagation over UCQ views,
    by subset enumeration over the bad answers' lineage tuples
    ([max_candidates], default 18). [None] when some requested deletion
    is not an answer or the instance is infeasible (never for non-empty
    lineages). Raises [Invalid_argument] on unknown view names or
    candidate blowup. *)
val propagate :
  ?max_candidates:int ->
  Relational.Instance.t ->
  t list ->
  deletions:(string * Relational.Tuple.t list) list ->
  outcome option

val pp : Format.formatter -> t -> unit
