(** Join-order planning for query evaluation.

    The evaluator joins body atoms left to right; a bad order (e.g. a
    cross product before the selective atom) costs orders of magnitude on
    star joins. This planner greedily orders atoms by:
    + most constants and smallest relation first,
    + then always an atom maximally connected to the bound variables
      (avoiding cross products when possible), smallest relation as the
      tie-break.

    {!Eval} applies the plan internally and reports witnesses in the
    {e original} body order, so provenance and the tree algorithms are
    unaffected. Benchmarked in E18. *)

(** [order db q] — a permutation [p] of [0 .. |body|-1]; evaluate atom
    [p.(0)] first, etc. *)
val order : Relational.Instance.t -> Query.t -> int array

(** [reorder_body db q] — [q] with the body permuted per {!order}
    (exposed for inspection/testing; changes witness order!). *)
val reorder_body : Relational.Instance.t -> Query.t -> Query.t
