(** Semiring provenance polynomials (Green–Karvounarakis–Tannen) for CQ
    answers — the algebraic generalization of the why-provenance that §V
    of the paper builds on. Each derivation contributes a monomial (the
    product of its source tuples, with exponents for self-join reuse);
    the answer's polynomial is their sum, with integer coefficients for
    derivations that collapse to the same monomial under projection.

    Specializing the semiring recovers the classical notions:
    + ℕ[X] → ℕ (all variables 1): number of derivations;
    + drop exponents/coefficients: why-provenance;
    + PosBool: answer survival under a tuple-retention assignment — the
      deletion-propagation semantics itself;
    + Viterbi (max, ×): best-derivation confidence from per-tuple
      scores. *)

type monomial = (Relational.Stuple.t * int) list
(** tuple → exponent, sorted by tuple; exponents ≥ 1. *)

type polynomial = (monomial * int) list
(** monomial → coefficient, coefficients ≥ 1; sorted. *)

(** The provenance polynomial of an answer (empty if not an answer). *)
val polynomial : Relational.Instance.t -> Query.t -> Relational.Tuple.t -> polynomial

(** Number of derivations: evaluate in ℕ with every variable = 1. *)
val count : polynomial -> int

(** Why-provenance: the monomials' supports as sets. *)
val why : polynomial -> Relational.Stuple.Set.t list

(** PosBool specialization: does the answer survive when exactly the
    tuples with [kept t = true] remain? This is precisely
    "the answer survives the deletion of the rest" — cross-validated
    against {!Eval} in the tests. *)
val survives : polynomial -> kept:(Relational.Stuple.t -> bool) -> bool

(** Viterbi specialization: max over derivations of the product of
    per-tuple scores (exponents respected). 0 for non-answers. *)
val best_confidence : polynomial -> score:(Relational.Stuple.t -> float) -> float

val pp : Format.formatter -> polynomial -> unit
