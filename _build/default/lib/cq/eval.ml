module R = Relational
module Env = Map.Make (String)

type witness = R.Stuple.t array

let witness_set w = Array.fold_left (fun acc st -> R.Stuple.Set.add st acc) R.Stuple.Set.empty w

(* Instantiate a term under an environment; None if an unbound variable. *)
let term_value env = function
  | Term.Const c -> Some c
  | Term.Var v -> Env.find_opt v env

(* If every key position of [atom] is bound under [env], return the key
   tuple, enabling an O(log n) unique lookup instead of a scan. *)
let bound_key schema env (atom : Atom.t) =
  let s = R.Schema.Db.find schema atom.rel in
  let rec go acc = function
    | [] -> Some (R.Tuple.of_list (List.rev acc))
    | pos :: rest -> (
      match term_value env atom.args.(pos) with
      | Some v -> go (v :: acc) rest
      | None -> None)
  in
  go [] s.R.Schema.key

(* Extend [env] by unifying [atom] against [tuple]; None on clash. *)
let unify env (atom : Atom.t) tuple =
  let n = Atom.arity atom in
  let rec go i env =
    if i = n then Some env
    else
      let v = R.Tuple.get tuple i in
      match atom.args.(i) with
      | Term.Const c -> if R.Value.equal c v then go (i + 1) env else None
      | Term.Var x -> (
        match Env.find_opt x env with
        | Some v' -> if R.Value.equal v v' then go (i + 1) env else None
        | None -> go (i + 1) (Env.add x v env))
  in
  go 0 env

let instantiate_head env (q : Query.t) =
  let value t =
    match term_value env t with
    | Some v -> v
    | None -> invalid_arg ("Eval: unbound head term in " ^ q.Query.name)
  in
  R.Tuple.of_list (List.map value q.Query.head)

let matches ?(planned = true) db (q : Query.t) =
  let schema = R.Instance.schema db in
  let atoms = Array.of_list q.Query.body in
  let perm =
    if planned then Plan.order db q else Array.init (Array.length atoms) Fun.id
  in
  let ordered = Array.to_list (Array.map (fun i -> atoms.(i)) perm) in
  let unpermute w =
    (* w follows the planned order; restore original body order *)
    let out = Array.make (Array.length w) w.(0) in
    Array.iteri (fun planned_pos original_pos -> out.(original_pos) <- w.(planned_pos)) perm;
    out
  in
  let rec go env acc_witness = function
    | [] ->
      let w = Array.of_list (List.rev acc_witness) in
      [ (instantiate_head env q, unpermute w) ]
    | (atom : Atom.t) :: rest ->
      let rel = R.Instance.relation db atom.rel in
      let candidates =
        match bound_key schema env atom with
        | Some key -> (
          match R.Relation.find_by_key rel key with
          | Some t -> [ t ]
          | None -> [])
        | None -> (
          (* most selective secondary index over the bound positions *)
          let best = ref None in
          Array.iteri
            (fun i term ->
              match term_value env term with
              | None -> ()
              | Some v ->
                let hits = R.Relation.find_by_column rel i v in
                let n = List.length hits in
                (match !best with
                | Some (m, _) when m <= n -> ()
                | _ -> best := Some (n, hits)))
            atom.args;
          match !best with
          | Some (_, hits) -> hits
          | None -> R.Relation.tuples rel)
      in
      List.concat_map
        (fun t ->
          match unify env atom t with
          | Some env' -> go env' (R.Stuple.make atom.rel t :: acc_witness) rest
          | None -> [])
        candidates
  in
  go Env.empty [] ordered

let evaluate ?planned db q =
  List.fold_left
    (fun acc (t, _) -> R.Tuple.Set.add t acc)
    R.Tuple.Set.empty (matches ?planned db q)

let provenance ?planned db q =
  List.fold_left
    (fun acc (t, w) ->
      let ws = Option.value ~default:[] (R.Tuple.Map.find_opt t acc) in
      R.Tuple.Map.add t (w :: ws) acc)
    R.Tuple.Map.empty (matches ?planned db q)
