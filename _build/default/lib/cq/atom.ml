type t = {
  rel : string;
  args : Term.t array;
}

let make rel args = { rel; args = Array.of_list args }

let arity a = Array.length a.args

let vars a =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc t ->
      match t with
      | Term.Var v when not (Hashtbl.mem seen v) ->
        Hashtbl.add seen v ();
        v :: acc
      | _ -> acc)
    [] a.args
  |> List.rev

let var_set a = Term.Vars.of_list (vars a)

let key_vars schema a =
  let s = Relational.Schema.Db.find schema a.rel in
  List.fold_left
    (fun acc pos ->
      match a.args.(pos) with
      | Term.Var v -> Term.Vars.add v acc
      | Term.Const _ -> acc)
    Term.Vars.empty s.Relational.Schema.key

let check schema a =
  match Relational.Schema.Db.find_opt schema a.rel with
  | None -> invalid_arg ("Atom.check: unknown relation " ^ a.rel)
  | Some s ->
    if s.Relational.Schema.arity <> arity a then
      invalid_arg
        (Printf.sprintf "Atom.check: %s expects arity %d, atom has %d" a.rel
           s.Relational.Schema.arity (arity a))

let matches a tuple =
  if Relational.Tuple.arity tuple <> arity a then None
  else
    let rec go i env =
      if i = arity a then Some (List.rev env)
      else
        let v = Relational.Tuple.get tuple i in
        match a.args.(i) with
        | Term.Const c ->
          if Relational.Value.equal c v then go (i + 1) env else None
        | Term.Var x -> (
          match List.assoc_opt x env with
          | Some v' -> if Relational.Value.equal v v' then go (i + 1) env else None
          | None -> go (i + 1) ((x, v) :: env))
    in
    go 0 []

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let la = Array.length a.args and lb = Array.length b.args in
    if la <> lb then Int.compare la lb
    else
      let rec go i =
        if i = la then 0
        else
          let c = Term.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
      in
      go 0

let equal a b = compare a b = 0

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    (Array.to_list a.args)
