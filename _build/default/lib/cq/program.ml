module R = Relational

type t = {
  rules : Query.t list;
}

type error =
  | Recursive of string list
  | Unsafe of string
  | Unknown_predicate of string

let pp_error ppf = function
  | Recursive cycle ->
    Format.fprintf ppf "recursive program: %s" (String.concat " -> " cycle)
  | Unsafe q -> Format.fprintf ppf "unsafe rule for %s" q
  | Unknown_predicate p -> Format.fprintf ppf "unknown predicate %s" p

let idb_names rules =
  List.map (fun (q : Query.t) -> q.name) rules |> List.sort_uniq String.compare

let rules_of t name = List.filter (fun (q : Query.t) -> q.name = name) t.rules

let depends_on t name =
  let idb = idb_names t.rules in
  rules_of t name
  |> List.concat_map (fun (q : Query.t) -> Query.relations q)
  |> List.filter (fun r -> List.mem r idb)
  |> List.sort_uniq String.compare

(* cycle detection over the IDB dependency graph; returns a witness cycle *)
let find_cycle rules =
  let idb = idb_names rules in
  let deps name =
    List.filter (fun (q : Query.t) -> q.name = name) rules
    |> List.concat_map (fun (q : Query.t) -> Query.relations q)
    |> List.filter (fun r -> List.mem r idb)
  in
  let state = Hashtbl.create 16 in
  (* state: 1 = on stack, 2 = done *)
  let exception Cycle of string list in
  let rec dfs path name =
    match Hashtbl.find_opt state name with
    | Some 2 -> ()
    | Some 1 ->
      let rec tail = function
        | x :: _ as l when x = name -> l
        | _ :: rest -> tail rest
        | [] -> [ name ]
      in
      raise (Cycle (List.rev (name :: tail path)))
    | _ ->
      Hashtbl.replace state name 1;
      List.iter (dfs (name :: path)) (deps name);
      Hashtbl.replace state name 2
  in
  try
    List.iter (dfs []) idb;
    None
  with Cycle c -> Some c

let make ~schema rules =
  let idb = idb_names rules in
  (* safety per rule (head vars in body) without requiring IDB atoms to be
     in the schema *)
  let safe (q : Query.t) =
    let bv =
      List.fold_left
        (fun acc a -> Term.Vars.union acc (Atom.var_set a))
        Term.Vars.empty q.body
    in
    Term.Vars.subset (Query.head_vars q) bv && q.body <> []
  in
  match List.find_opt (fun q -> not (safe q)) rules with
  | Some q -> Error (Unsafe q.Query.name)
  | None -> (
    (* EDB atoms must check against the schema *)
    let edb_ok =
      List.for_all
        (fun (q : Query.t) ->
          List.for_all
            (fun (a : Atom.t) ->
              List.mem a.rel idb
              ||
              match R.Schema.Db.find_opt schema a.rel with
              | Some s -> s.R.Schema.arity = Atom.arity a
              | None -> false)
            q.body)
        rules
    in
    if not edb_ok then Error (Unknown_predicate "an EDB atom does not match the schema")
    else
      match find_cycle rules with
      | Some c -> Error (Recursive c)
      | None -> Ok { rules })

let predicates t = idb_names t.rules

(* ---- unfolding ---- *)

(* environments map variables to terms; resolve follows chains *)
module Env = Map.Make (String)

let rec resolve env (term : Term.t) =
  match term with
  | Term.Const _ -> term
  | Term.Var v -> (
    match Env.find_opt v env with
    | Some t when not (Term.equal t term) -> resolve env t
    | _ -> term)

let unify_terms env a b =
  let a = resolve env a and b = resolve env b in
  match (a, b) with
  | Term.Const x, Term.Const y -> if R.Value.equal x y then Some env else None
  | Term.Var v, t | t, Term.Var v ->
    if Term.equal (Term.Var v) t then Some env else Some (Env.add v t env)

let apply_env env (a : Atom.t) = { a with Atom.args = Array.map (resolve env) a.Atom.args }

(* an expansion of a predicate: head terms + EDB-only body, over private
   variable names *)
type expansion = {
  head : Term.t list;
  body : Atom.t list;
}

let fresh_counter = ref 0

let rename (e : expansion) =
  incr fresh_counter;
  let tag = !fresh_counter in
  let map = Hashtbl.create 8 in
  let var v =
    match Hashtbl.find_opt map v with
    | Some v' -> v'
    | None ->
      let v' = Printf.sprintf "%s_u%d" v tag in
      Hashtbl.replace map v v';
      v'
  in
  let term = function Term.Var v -> Term.Var (var v) | t -> t in
  {
    head = List.map term e.head;
    body = List.map (fun (a : Atom.t) -> { a with Atom.args = Array.map term a.Atom.args }) e.body;
  }

let unfold t ~schema name =
  ignore schema;
  let idb = idb_names t.rules in
  if not (List.mem name idb) then Error (Unknown_predicate name)
  else begin
    let memo : (string, expansion list) Hashtbl.t = Hashtbl.create 8 in
    let rec expansions pred =
      match Hashtbl.find_opt memo pred with
      | Some e -> e
      | None ->
        let result =
          rules_of t pred
          |> List.concat_map (fun (q : Query.t) ->
                 (* partial: env + accumulated EDB atoms (un-substituted;
                    env applied at the end) *)
                 let step partials (atom : Atom.t) =
                   if List.mem atom.rel idb then
                     List.concat_map
                       (fun (env, acc) ->
                         expansions atom.rel
                         |> List.filter_map (fun e ->
                                let e = rename e in
                                let rec unify_all env pairs =
                                  match pairs with
                                  | [] -> Some env
                                  | (a, b) :: rest ->
                                    Option.bind (unify_terms env a b) (fun env ->
                                        unify_all env rest)
                                in
                                let pairs =
                                  List.combine (Array.to_list atom.args) e.head
                                in
                                match unify_all env pairs with
                                | Some env -> Some (env, acc @ e.body)
                                | None -> None))
                       partials
                   else List.map (fun (env, acc) -> (env, acc @ [ atom ])) partials
                 in
                 let partials = List.fold_left step [ (Env.empty, []) ] q.body in
                 List.map
                   (fun (env, acc) ->
                     {
                       head = List.map (resolve env) q.head;
                       body = List.map (apply_env env) acc;
                     })
                   partials)
        in
        Hashtbl.replace memo pred result;
        result
    in
    let disjuncts =
      expansions name
      |> List.map (fun e -> Query.make ~name ~head:e.head ~body:e.body)
    in
    match Containment.dedupe disjuncts with
    | [] -> Error (Unknown_predicate name)
    | ds -> Ok (Ucq.make ~name ds)
  end

let evaluate t db name =
  match unfold t ~schema:(R.Instance.schema db) name with
  | Error e -> Error e
  | Ok u -> Ok (Ucq.evaluate db u)
