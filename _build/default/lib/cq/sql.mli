(** A SQL front end for the select–join fragment: translate

    {v
    SELECT a.AuName, j.Topic
    FROM T1 a, T2 j
    WHERE a.Journal = j.Journal AND j.Papers = 30
    v}

    into the equivalent conjunctive query. Supported: qualified or bare
    column references (bare ones must be unambiguous), table aliases
    (enabling self-joins), [WHERE] conjunctions of equalities between
    columns and constants, [SELECT *]. Keywords are case-insensitive.
    No subqueries, aggregates, [OR], or inequalities — exactly the CQ
    fragment the paper studies. *)

type error = {
  position : int;   (** 0-based character offset of the failure *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

(** [query_of_string ~schema ~name sql] — the resulting query is checked
    against [schema] (arity, known tables/columns). *)
val query_of_string :
  schema:Relational.Schema.Db.t ->
  name:string ->
  string ->
  (Query.t, error) Stdlib.result
