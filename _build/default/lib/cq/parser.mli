(** Parser for datalog-style conjunctive queries.

    Syntax:
    {v
    Q3(X, Z) :- T1(X, Y), T2(Y, Z, W)
    v}
    Prolog conventions: tokens beginning with an uppercase letter or [_]
    are variables; integers, lowercase identifiers and single-quoted
    strings are constants. [#] starts a comment. *)

exception Parse_error of string

(** Parse one query. Raises {!Parse_error}. *)
val query_of_string : string -> Query.t

(** Parse a newline-separated list of queries (blank lines and comments
    ignored). *)
val queries_of_string : string -> Query.t list

val queries_of_file : string -> Query.t list
