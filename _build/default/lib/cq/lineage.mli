(** Why- and where-provenance for conjunctive-query answers — the
    provenance notions §V connects deletion propagation to (Buneman et
    al.; Cheney–Chiticariu–Tan).

    {b Why-provenance} of an answer: its set of witnesses (each a set of
    source tuples supporting one derivation). Deletion propagation kills
    an answer exactly when every witness of its why-provenance is hit —
    the bridge {!Deleprop.Side_effect} is built on.

    {b Where-provenance} of an answer cell: the source {e cells} its
    value was copied from, per derivation (head constants have none). *)

(** A source cell: a column of a concrete tuple. *)
type cell = {
  rel : string;
  tuple : Relational.Tuple.t;
  column : int;
}

val pp_cell : Format.formatter -> cell -> unit

(** All witnesses of an answer (empty when it is not an answer). *)
val why : Relational.Instance.t -> Query.t -> Relational.Tuple.t -> Relational.Stuple.Set.t list

(** Inclusion-minimal witnesses: a witness is dropped when another is a
    strict subset (possible with self-joins reusing tuples). *)
val minimal_why :
  Relational.Instance.t -> Query.t -> Relational.Tuple.t -> Relational.Stuple.Set.t list

(** [where_ db q answer] — for each head position, the source cells that
    position copies from, across all derivations (deduplicated). Constant
    head terms yield an empty list at their position. *)
val where_ :
  Relational.Instance.t -> Query.t -> Relational.Tuple.t -> cell list array
