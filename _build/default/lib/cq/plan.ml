module R = Relational

let relation_size db (a : Atom.t) =
  match R.Instance.relation_opt db a.rel with
  | Some rel -> R.Relation.cardinal rel
  | None -> max_int

let num_constants (a : Atom.t) =
  Array.fold_left (fun n t -> if Term.is_var t then n else n + 1) 0 a.args

let greedy_order db (q : Query.t) =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  if n = 0 then [||]
  else begin
    let remaining = ref (List.init n Fun.id) in
    let bound = ref Term.Vars.empty in
    let chosen = ref [] in
    (* score: (connected to bound vars?, #newly bound key positions...) —
       approximated by (shared bound vars, constants, -size) *)
    let pick () =
      let score i =
        let a = atoms.(i) in
        let shared = Term.Vars.cardinal (Term.Vars.inter (Atom.var_set a) !bound) in
        let connected = if !chosen = [] then 1 else if shared > 0 then 1 else 0 in
        (connected, shared + num_constants a, -relation_size db a)
      in
      let best =
        List.fold_left
          (fun acc i ->
            match acc with
            | Some (j, sj) ->
              let si = score i in
              if compare si sj > 0 then Some (i, si) else Some (j, sj)
            | None -> Some (i, score i))
          None !remaining
      in
      match best with Some (i, _) -> i | None -> assert false
    in
    for _ = 1 to n do
      let i = pick () in
      remaining := List.filter (fun j -> j <> i) !remaining;
      bound := Term.Vars.union !bound (Atom.var_set atoms.(i));
      chosen := i :: !chosen
    done;
    Array.of_list (List.rev !chosen)
  end

let order db (q : Query.t) =
  if List.length q.body <= Optimizer.max_dp_atoms then Optimizer.order db q
  else greedy_order db q

let reorder_body db (q : Query.t) =
  let atoms = Array.of_list q.body in
  let p = order db q in
  { q with Query.body = Array.to_list (Array.map (fun i -> atoms.(i)) p) }
