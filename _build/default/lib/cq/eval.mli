(** Evaluation of conjunctive queries with provenance.

    A match (§II.B) is an assignment [μ] of variables to constants under
    which every body atom becomes a tuple of the instance; [μ(head)] is
    the answer. The {e witness} of a match is the vector of source tuples
    used, one per body atom in body order — for key-preserving queries the
    witness is uniquely determined by the answer (§II.C), the property all
    solvers in this library exploit. *)

type witness = Relational.Stuple.t array
(** One source tuple per body atom, in body order. *)

(** Source tuples of a witness, as a set (self-joins may legitimately use
    the same source tuple in two atoms; the set collapses them). *)
val witness_set : witness -> Relational.Stuple.Set.t

(** All matches of [q] on the instance, as (answer, witness) pairs — one
    pair per assignment, so an answer with several derivations appears
    several times. [planned] (default true) runs the body through
    {!Plan.order} before joining; witnesses are always reported in the
    original body order. *)
val matches :
  ?planned:bool -> Relational.Instance.t -> Query.t -> (Relational.Tuple.t * witness) list

(** The query result [Q(D)]: the set of answers. *)
val evaluate : ?planned:bool -> Relational.Instance.t -> Query.t -> Relational.Tuple.Set.t

(** Answer -> all of its witnesses. *)
val provenance :
  ?planned:bool ->
  Relational.Instance.t -> Query.t -> witness list Relational.Tuple.Map.t
