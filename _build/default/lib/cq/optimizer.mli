(** Cost-based join ordering, Selinger style: dynamic programming over
    atom subsets with cardinality estimation from per-column
    distinct-value statistics ({!Relational.Relation.distinct_in_column}).

    Cost model: the estimated rows of a partial join is the product of
    base cardinalities, discounted by [1/distinct(col)] for every column
    bound by a constant or an already-bound variable (independence
    assumption). The plan cost is the sum of intermediate result sizes —
    the classic left-deep Selinger objective. Exponential in the number
    of atoms; {!Plan} delegates here for bodies of ≤ {!max_dp_atoms}
    atoms and falls back to its greedy heuristic beyond. *)

val max_dp_atoms : int

(** [order db q] — permutation of the body atoms minimizing the estimated
    plan cost (left-deep). *)
val order : Relational.Instance.t -> Query.t -> int array

(** Estimated result cardinality of the whole query under the model —
    exposed for inspection and tests. *)
val estimated_rows : Relational.Instance.t -> Query.t -> float
