(** Causality and responsibility for query answers (Meliou, Gatterbauer,
    Moore, Suciu [33]–[35] in the paper's bibliography) — the quantitative
    refinement of "which source tuple is to blame", complementing
    deletion propagation's "which deletion is cheapest".

    A source tuple [t] is a {e counterfactual cause} of answer [a] when
    deleting [t] alone removes [a]; an {e actual cause} when some
    contingency [Γ] (a set of other tuples) can be removed first — with
    [a] surviving — so that [t] becomes counterfactual. Its
    {e responsibility} is [1 / (1 + min |Γ|)], and 0 for non-causes.

    Exact by subset search over the tuples occurring in [a]'s witnesses;
    [max_candidates] (default 16) bounds the blowup. *)

val is_counterfactual :
  Relational.Instance.t -> Query.t -> answer:Relational.Tuple.t -> Relational.Stuple.t -> bool

val is_cause :
  ?max_candidates:int ->
  Relational.Instance.t -> Query.t -> answer:Relational.Tuple.t -> Relational.Stuple.t -> bool

(** [responsibility db q ~answer t] ∈ [0, 1]. *)
val responsibility :
  ?max_candidates:int ->
  Relational.Instance.t -> Query.t -> answer:Relational.Tuple.t -> Relational.Stuple.t -> float

(** Responsibilities of every tuple occurring in some witness of the
    answer, highest first. *)
val ranking :
  ?max_candidates:int ->
  Relational.Instance.t -> Query.t -> answer:Relational.Tuple.t ->
  (Relational.Stuple.t * float) list
