(** Structural properties from the complexity landscape the paper builds
    on (Tables II–V): triads (Freire et al. [24], governing resilience /
    source side-effect) and head domination (Kimelfeld et al. [30, 31],
    governing single-query view side-effect). Both are defined for
    self-join-free queries; callers should check
    {!Classify.is_self_join_free} first (these functions do not). *)

(** [triads q] — all triads of [q]: triples of atoms [{A, B, C}] such
    that every pair is connected by a path of atoms whose consecutive
    links share a variable {e not occurring in the third atom}. The
    dichotomy of [24]: resilience (and source side-effect) of an sj-free
    CQ is polynomial iff the query is triad-free, NP-hard otherwise. *)
val triads : Query.t -> (Atom.t * Atom.t * Atom.t) list

val is_triad_free : Query.t -> bool

(** [has_head_domination q] — the dichotomy of [31]: for every connected
    component [γ] of the existential-variable co-occurrence graph, some
    atom of [q] contains every head variable occurring in [γ]'s atoms.
    Single-query view side-effect is polynomial for sj-free queries with
    head domination, NP-hard (indeed APX-hard) without. Queries with no
    existential variables (project-free) are trivially head-dominated. *)
val has_head_domination : Query.t -> bool

(** The existential components used by {!has_head_domination}, exposed
    for inspection: each as (existential variables, atoms touching them). *)
val existential_components : Query.t -> (Term.Vars.t * Atom.t list) list

(** Variable-level FD closure: a schema FD [lhs → rhs] on relation [R]
    induces, through every atom over [R], the implication "the variables
    at the lhs positions determine the variables at the rhs positions".
    [fd_closure schema fds q vars] is the least superset of [vars] closed
    under these induced implications (constants at lhs positions count as
    determined). This is the rewriting behind the FD-extended dichotomies
    of [30] and [24]. *)
val fd_closure :
  Relational.Schema.Db.t ->
  (string * Relational.Fd.t) list ->
  Query.t ->
  Term.Vars.t ->
  Term.Vars.t

(** The FD-rewritten query: head extended with every variable in the FD
    closure of the original head variables. Existential variables
    functionally determined by the head stop being "really" existential —
    the rewriting makes that syntactic. *)
val fd_rewrite :
  Relational.Schema.Db.t -> (string * Relational.Fd.t) list -> Query.t -> Query.t

(** fd-head domination (in the spirit of Kimelfeld [30]): head domination
    where an atom dominates a component when the component's head
    variables lie in the {e FD closure} of the atom's variables — the
    atom pins them functionally even if it does not contain them.
    With an empty FD list this coincides with {!has_head_domination}.
    (Our rendering of the dichotomy's rewriting; see DESIGN.md.) *)
val has_fd_head_domination :
  Relational.Schema.Db.t -> (string * Relational.Fd.t) list -> Query.t -> bool

(** fd-induced triad-freeness (in the spirit of Freire et al. [24]):
    the triad test where a connecting path must avoid not just the third
    atom's variables but their FD closure — variables the third atom
    functionally pins cannot carry an independent path. Empty FDs
    coincide with {!is_triad_free}. (Our rendering; see DESIGN.md.) *)
val is_fd_triad_free :
  Relational.Schema.Db.t -> (string * Relational.Fd.t) list -> Query.t -> bool
