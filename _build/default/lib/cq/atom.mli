(** Atomic formulas [T(x, y, c)] over a schema. *)

type t = {
  rel : string;
  args : Term.t array;
}

val make : string -> Term.t list -> t
val arity : t -> int

(** Variables occurring in the atom, left to right without duplicates. *)
val vars : t -> string list

val var_set : t -> Term.Vars.t

(** [key_vars schema atom] — variables sitting at key positions of the
    atom's relation ("key variables", §II.B). *)
val key_vars : Relational.Schema.Db.t -> t -> Term.Vars.t

(** [check schema atom] — raises [Invalid_argument] if the relation is
    unknown or the arity disagrees with the schema. *)
val check : Relational.Schema.Db.t -> t -> unit

(** [matches atom tuple] is [Some bindings] if [tuple] unifies with the
    atom under the empty assignment — constants agree and repeated
    variables receive equal values; the bindings list each variable once. *)
val matches : t -> Relational.Tuple.t -> (string * Relational.Value.t) list option

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
