module R = Relational

type cell = {
  rel : string;
  tuple : R.Tuple.t;
  column : int;
}

let pp_cell ppf c = Format.fprintf ppf "%s%a[%d]" c.rel R.Tuple.pp c.tuple c.column

let witnesses_of db q answer =
  Eval.matches db q
  |> List.filter_map (fun (t, w) -> if R.Tuple.equal t answer then Some w else None)

let why db q answer =
  witnesses_of db q answer |> List.map Eval.witness_set

let minimal_why db q answer =
  let all = why db q answer |> List.sort_uniq R.Stuple.Set.compare in
  List.filter
    (fun w ->
      not
        (List.exists
           (fun w' -> (not (R.Stuple.Set.equal w w')) && R.Stuple.Set.subset w' w)
           all))
    all

let where_ db (q : Query.t) answer =
  let head = Array.of_list q.head in
  let out = Array.make (Array.length head) [] in
  let add pos c = if not (List.mem c out.(pos)) then out.(pos) <- c :: out.(pos) in
  List.iter
    (fun witness ->
      (* witness.(i) matches body atom i; for each head variable find its
         occurrences in the body and record the concrete cells *)
      Array.iteri
        (fun pos term ->
          match term with
          | Term.Const _ -> ()
          | Term.Var v ->
            List.iteri
              (fun ai (atom : Atom.t) ->
                Array.iteri
                  (fun col arg ->
                    match arg with
                    | Term.Var v' when String.equal v v' ->
                      let st = witness.(ai) in
                      add pos { rel = st.R.Stuple.rel; tuple = st.R.Stuple.tuple; column = col }
                    | _ -> ())
                  atom.args)
              q.body)
        head)
    (witnesses_of db q answer);
  Array.map List.rev out
