(** Syntactic query classes used throughout the paper (§II.B, §IV.B). *)

(** [is_project_free q] — every body variable occurs in the head
    (no projection; select-join queries). Project-free queries are always
    key preserving. *)
val is_project_free : Query.t -> bool

(** [is_self_join_free q] — no relation symbol occurs twice in the body. *)
val is_self_join_free : Query.t -> bool

(** [is_key_preserving schema q] — every key variable of every body atom
    occurs in the head (§II.B). Constants at key positions are allowed. *)
val is_key_preserving : Relational.Schema.Db.t -> Query.t -> bool

(** Reasons a query fails to be key preserving: the offending
    [(atom, variable)] pairs. Empty iff {!is_key_preserving}. *)
val key_preserving_violations :
  Relational.Schema.Db.t -> Query.t -> (Atom.t * string) list

type profile = {
  project_free : bool;
  self_join_free : bool;
  key_preserving : bool;
}

val profile : Relational.Schema.Db.t -> Query.t -> profile
val pp_profile : Format.formatter -> profile -> unit

(** [check_key_preserving schema qs] — raises [Invalid_argument] naming
    the first offending query unless every query is key preserving.
    Solvers that rely on the unique-witness property call this. *)
val check_key_preserving : Relational.Schema.Db.t -> Query.t list -> unit
