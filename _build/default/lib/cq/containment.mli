(** Conjunctive-query containment, equivalence and minimization — the
    Chandra–Merlin machinery [9] the paper's complexity landscape builds
    on. Containment [q1 ⊆ q2] holds iff there is a homomorphism from
    [q2] to [q1] (variables to terms, constants fixed, body atoms to body
    atoms, head to head).

    Used by the library to deduplicate query sets (equivalent queries
    produce identical views and would double-count side-effects) and to
    minimize query bodies (a minimized body yields smaller witnesses,
    hence tighter candidate sets). *)

type homomorphism = (string * Term.t) list
(** Assignment of the source query's variables. *)

(** [homomorphism ~from:q2 ~into:q1] — a homomorphism witnessing
    [q1 ⊆ q2], if any. Exponential in |vars(q2)| in the worst case
    (containment is NP-complete); fine at query scale. *)
val homomorphism : from:Query.t -> into:Query.t -> homomorphism option

(** [contained q1 q2] — is [q1 ⊆ q2] (every answer of [q1] on every
    database is an answer of [q2])? Requires equal head arity (returns
    false otherwise). *)
val contained : Query.t -> Query.t -> bool

val equivalent : Query.t -> Query.t -> bool

(** [minimize q] — an equivalent query whose body is a core: no proper
    sub-body is the target of a head-preserving homomorphism from [q].
    The result's name is [q]'s. *)
val minimize : Query.t -> Query.t

(** [dedupe qs] — drop queries equivalent to an earlier one (keeping
    first occurrences, order preserved). *)
val dedupe : Query.t list -> Query.t list
