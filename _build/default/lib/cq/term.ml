type t =
  | Var of string
  | Const of Relational.Value.t

let var v = Var v
let const c = Const c
let int i = Const (Relational.Value.int i)
let str s = Const (Relational.Value.str s)

let is_var = function Var _ -> true | Const _ -> false

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Const x, Const y -> Relational.Value.compare x y
  | Var _, Const _ -> -1
  | Const _, Var _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Const c -> Relational.Value.pp ppf c

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)

module Vars = struct
  include Stdlib.Set.Make (String)

  let pp ppf s =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_string)
      (elements s)
end
