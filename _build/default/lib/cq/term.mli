(** Terms of conjunctive queries: variables or constants (§II.B). *)

type t =
  | Var of string
  | Const of Relational.Value.t

val var : string -> t
val const : Relational.Value.t -> t
val int : int -> t
val str : string -> t

val is_var : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Set : Stdlib.Set.S with type elt = t

(** Sets and maps over variable names. *)
module Vars : sig
  include Stdlib.Set.S with type elt = string

  val pp : Format.formatter -> t -> unit
end
