(* Triads and head domination — see the .mli for the definitions. *)

(* connectivity between atoms i and j in the graph whose edges link atoms
   sharing a variable outside [forbidden] *)
let connected_avoiding atoms ~from ~target ~forbidden =
  let n = Array.length atoms in
  let share_outside a b =
    not
      (Term.Vars.is_empty
         (Term.Vars.diff (Term.Vars.inter (Atom.var_set a) (Atom.var_set b)) forbidden))
  in
  let visited = Array.make n false in
  let q = Queue.create () in
  Queue.add from q;
  visited.(from) <- true;
  let found = ref false in
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    if i = target then found := true
    else
      for j = 0 to n - 1 do
        if (not visited.(j)) && share_outside atoms.(i) atoms.(j) then begin
          visited.(j) <- true;
          Queue.add j q
        end
      done
  done;
  !found

let triads (q : Query.t) =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  let indep i j k =
    connected_avoiding atoms ~from:i ~target:j ~forbidden:(Atom.var_set atoms.(k))
  in
  let acc = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        if indep i j k && indep i k j && indep j k i then
          acc := (atoms.(i), atoms.(j), atoms.(k)) :: !acc
      done
    done
  done;
  List.rev !acc

let is_triad_free q = triads q = []

let existential_components (q : Query.t) =
  let ex = Query.existential_vars q in
  if Term.Vars.is_empty ex then []
  else begin
    (* union-find over existential variables, merged per atom *)
    let parent = Hashtbl.create 16 in
    let rec find v =
      match Hashtbl.find_opt parent v with
      | None | Some None -> v
      | Some (Some p) ->
        let r = find p in
        Hashtbl.replace parent v (Some r);
        r
    in
    let union a b =
      let ra = find a and rb = find b in
      if ra <> rb then Hashtbl.replace parent ra (Some rb)
    in
    Term.Vars.iter (fun v -> Hashtbl.replace parent v None) ex;
    List.iter
      (fun atom ->
        match Term.Vars.elements (Term.Vars.inter (Atom.var_set atom) ex) with
        | [] -> ()
        | v0 :: rest -> List.iter (union v0) rest)
      q.body;
    let groups = Hashtbl.create 16 in
    Term.Vars.iter
      (fun v ->
        let r = find v in
        Hashtbl.replace groups r
          (Term.Vars.add v (Option.value ~default:Term.Vars.empty (Hashtbl.find_opt groups r))))
      ex;
    Hashtbl.fold
      (fun _ vars acc ->
        let atoms =
          List.filter
            (fun atom -> not (Term.Vars.is_empty (Term.Vars.inter (Atom.var_set atom) vars)))
            q.body
        in
        (vars, atoms) :: acc)
      groups []
  end

(* ---- FD-extended variants ---- *)

(* induced variable implications: for each atom over R and FD lhs->rhs on
   R, (vars at lhs positions, vars at rhs positions); a constant at a lhs
   position is vacuously determined *)
let induced_implications schema fds (q : Query.t) =
  List.concat_map
    (fun (atom : Atom.t) ->
      List.filter_map
        (fun (rel, (fd : Relational.Fd.t)) ->
          if rel <> atom.rel then None
          else begin
            let s = Relational.Schema.Db.find schema atom.rel in
            let vars_at attrs =
              List.fold_left
                (fun acc a ->
                  let pos = Relational.Schema.attr_index s a in
                  match atom.args.(pos) with
                  | Term.Var v -> Option.map (Term.Vars.add v) acc
                  | Term.Const _ -> acc)
                (Some Term.Vars.empty) attrs
            in
            let rhs_vars =
              List.fold_left
                (fun acc a ->
                  let pos = Relational.Schema.attr_index s a in
                  match atom.args.(pos) with
                  | Term.Var v -> Term.Vars.add v acc
                  | Term.Const _ -> acc)
                Term.Vars.empty fd.rhs
            in
            match vars_at fd.lhs with
            | Some lhs_vars -> Some (lhs_vars, rhs_vars)
            | None -> None
          end)
        fds)
    q.body

let fd_closure schema fds q vars =
  let implications = induced_implications schema fds q in
  let rec go acc =
    let next =
      List.fold_left
        (fun acc (lhs, rhs) ->
          if Term.Vars.subset lhs acc then Term.Vars.union acc rhs else acc)
        acc implications
    in
    if Term.Vars.equal next acc then acc else go next
  in
  go vars

let fd_rewrite schema fds (q : Query.t) =
  let closure = fd_closure schema fds q (Query.head_vars q) in
  let extra =
    Term.Vars.diff closure (Query.head_vars q)
    |> Term.Vars.elements |> List.map Term.var
  in
  { q with Query.head = q.head @ extra }

let has_head_domination (q : Query.t) =
  let hv = Query.head_vars q in
  List.for_all
    (fun (_, atoms) ->
      let head_in_component =
        List.fold_left
          (fun acc a -> Term.Vars.union acc (Term.Vars.inter (Atom.var_set a) hv))
          Term.Vars.empty atoms
      in
      List.exists
        (fun a -> Term.Vars.subset head_in_component (Atom.var_set a))
        q.body)
    (existential_components q)

let has_fd_head_domination schema fds (q : Query.t) =
  let hv = Query.head_vars q in
  List.for_all
    (fun (_, atoms) ->
      let head_in_component =
        List.fold_left
          (fun acc a -> Term.Vars.union acc (Term.Vars.inter (Atom.var_set a) hv))
          Term.Vars.empty atoms
      in
      List.exists
        (fun a ->
          Term.Vars.subset head_in_component (fd_closure schema fds q (Atom.var_set a)))
        q.body)
    (existential_components q)

let is_fd_triad_free schema fds (q : Query.t) =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  let indep i j k =
    connected_avoiding atoms ~from:i ~target:j
      ~forbidden:(fd_closure schema fds q (Atom.var_set atoms.(k)))
  in
  let found = ref false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      for k = j + 1 to n - 1 do
        if indep i j k && indep i k j && indep j k i then found := true
      done
    done
  done;
  not !found
