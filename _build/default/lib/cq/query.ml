type t = {
  name : string;
  head : Term.t list;
  body : Atom.t list;
}

let make ~name ~head ~body = { name; head; body }

let arity q = List.length q.head

let head_vars q =
  List.fold_left
    (fun acc t -> match t with Term.Var v -> Term.Vars.add v acc | Term.Const _ -> acc)
    Term.Vars.empty q.head

let body_vars q =
  List.fold_left (fun acc a -> Term.Vars.union acc (Atom.var_set a)) Term.Vars.empty q.body

let vars q = Term.Vars.union (head_vars q) (body_vars q)

let existential_vars q = Term.Vars.diff (body_vars q) (head_vars q)

let check schema q =
  if q.body = [] then invalid_arg (q.name ^ ": empty body");
  if q.head = [] then invalid_arg (q.name ^ ": empty head");
  List.iter (Atom.check schema) q.body;
  let bv = body_vars q in
  Term.Vars.iter
    (fun v ->
      if not (Term.Vars.mem v bv) then
        invalid_arg (q.name ^ ": unsafe head variable " ^ v))
    (head_vars q)

let relations q =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc (a : Atom.t) ->
      if Hashtbl.mem seen a.rel then acc
      else begin
        Hashtbl.add seen a.rel ();
        a.rel :: acc
      end)
    [] q.body
  |> List.rev

let substitute f q =
  let term = function
    | Term.Var v as t -> Option.value ~default:t (f v)
    | Term.Const _ as t -> t
  in
  {
    q with
    head = List.map term q.head;
    body =
      List.map
        (fun (a : Atom.t) -> { a with Atom.args = Array.map term a.Atom.args })
        q.body;
  }

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c
  else
    let c = List.compare Term.compare a.head b.head in
    if c <> 0 then c else List.compare Atom.compare a.body b.body

let equal a b = compare a b = 0

let pp ppf q =
  Format.fprintf ppf "%s(%a) :- %a" q.name
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Term.pp)
    q.head
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Atom.pp)
    q.body

let to_string q = Format.asprintf "%a" pp q
