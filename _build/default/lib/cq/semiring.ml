module R = Relational

type monomial = (R.Stuple.t * int) list
type polynomial = (monomial * int) list

let monomial_of_witness (w : Eval.witness) =
  Array.to_list w
  |> List.sort R.Stuple.compare
  |> List.fold_left
       (fun acc st ->
         match acc with
         | (st', e) :: rest when R.Stuple.equal st st' -> (st', e + 1) :: rest
         | _ -> (st, 1) :: acc)
       []
  |> List.rev

let polynomial db q answer =
  Eval.matches db q
  |> List.filter_map (fun (t, w) ->
         if R.Tuple.equal t answer then Some (monomial_of_witness w) else None)
  |> List.sort compare
  |> List.fold_left
       (fun acc m ->
         match acc with
         | (m', c) :: rest when m = m' -> (m', c + 1) :: rest
         | _ -> (m, 1) :: acc)
       []
  |> List.rev

let count p = List.fold_left (fun acc (_, c) -> acc + c) 0 p

let why p =
  List.map (fun (m, _) -> R.Stuple.Set.of_list (List.map fst m)) p
  |> List.sort_uniq R.Stuple.Set.compare

let survives p ~kept =
  List.exists (fun (m, _) -> List.for_all (fun (st, _) -> kept st) m) p

let best_confidence p ~score =
  List.fold_left
    (fun best (m, _) ->
      let v =
        List.fold_left
          (fun acc (st, e) -> acc *. Float.pow (score st) (float_of_int e))
          1.0 m
      in
      Float.max best v)
    0.0 p

let pp ppf p =
  let pp_mono ppf (m, c) =
    if c <> 1 then Format.fprintf ppf "%d·" c;
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "·")
      (fun ppf (st, e) ->
        if e = 1 then R.Stuple.pp ppf st
        else Format.fprintf ppf "%a^%d" R.Stuple.pp st e)
      ppf m
  in
  match p with
  | [] -> Format.fprintf ppf "0"
  | _ ->
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ") pp_mono ppf p
