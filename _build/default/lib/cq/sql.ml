module R = Relational

type error = {
  position : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "at %d: %s" e.position e.message

exception Err of error

let fail position fmt = Format.kasprintf (fun message -> raise (Err { position; message })) fmt

(* ---- tokens ---- *)

type token =
  | Ident of string
  | Num of int
  | Str of string
  | Comma
  | Dot
  | Eq
  | Star

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let pos = !i in
    (match c with
    | ' ' | '\t' | '\r' | '\n' -> incr i
    | ',' ->
      toks := (Comma, pos) :: !toks;
      incr i
    | '.' ->
      toks := (Dot, pos) :: !toks;
      incr i
    | '=' ->
      toks := (Eq, pos) :: !toks;
      incr i
    | '*' ->
      toks := (Star, pos) :: !toks;
      incr i
    | '\'' ->
      let j = ref (pos + 1) in
      while !j < n && s.[!j] <> '\'' do
        incr j
      done;
      if !j >= n then fail pos "unterminated string literal";
      toks := (Str (String.sub s (pos + 1) (!j - pos - 1)), pos) :: !toks;
      i := !j + 1
    | '0' .. '9' | '-' ->
      let j = ref (pos + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      if !j = pos + 1 && c = '-' then fail pos "stray '-'";
      toks := (Num (int_of_string (String.sub s pos (!j - pos))), pos) :: !toks;
      i := !j
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let ok ch =
        (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9') || ch = '_'
      in
      let j = ref (pos + 1) in
      while !j < n && ok s.[!j] do
        incr j
      done;
      toks := (Ident (String.sub s pos (!j - pos)), pos) :: !toks;
      i := !j
    | c -> fail pos "unexpected character %c" c);
  done;
  List.rev !toks

let is_kw kw = function
  | Ident s, _ -> String.lowercase_ascii s = kw
  | _ -> false

(* ---- AST ---- *)

type colref = { table : string option; column : string; at : int }

type operand =
  | Col of colref
  | Const of R.Value.t

type select_item =
  | All
  | Item of colref

(* ---- parser ---- *)

let rec parse_select_list acc = function
  | (Star, _) :: rest -> parse_after_item (All :: acc) rest
  | toks ->
    let item, rest = parse_colref toks in
    parse_after_item (Item item :: acc) rest

and parse_after_item acc = function
  | (Comma, _) :: rest -> parse_select_list acc rest
  | rest -> (List.rev acc, rest)

and parse_colref = function
  | (Ident a, pos) :: (Dot, _) :: (Ident b, _) :: rest ->
    ({ table = Some a; column = b; at = pos }, rest)
  | (Ident a, pos) :: rest when not (is_kw "from" (Ident a, pos)) ->
    ({ table = None; column = a; at = pos }, rest)
  | (_, pos) :: _ -> fail pos "expected a column reference"
  | [] -> fail 0 "unexpected end of input"

let parse_from toks =
  let rec entries acc = function
    | (Ident t, pos) :: rest when not (is_kw "where" (Ident t, pos)) -> (
      let alias, rest =
        match rest with
        | (Ident kw, _) :: (Ident a, _) :: rest' when String.lowercase_ascii kw = "as" ->
          (a, rest')
        | (Ident a, p) :: rest'
          when (not (is_kw "where" (Ident a, p))) && not (is_kw "and" (Ident a, p)) ->
          (a, rest')
        | _ -> (t, rest)
      in
      let acc = (t, alias, pos) :: acc in
      match rest with
      | (Comma, _) :: rest' -> entries acc rest'
      | _ -> (List.rev acc, rest))
    | (_, pos) :: _ -> fail pos "expected a table name"
    | [] -> fail 0 "expected a table name after FROM"
  in
  entries [] toks

let parse_operand = function
  | (Num v, _) :: rest -> (Const (R.Value.int v), rest)
  | (Str v, _) :: rest -> (Const (R.Value.str v), rest)
  | toks ->
    let c, rest = parse_colref toks in
    (Col c, rest)

let parse_where toks =
  let rec conds acc toks =
    let lhs, rest = parse_operand toks in
    match rest with
    | (Eq, _) :: rest -> (
      let rhs, rest = parse_operand rest in
      let acc = (lhs, rhs) :: acc in
      match rest with
      | (Ident a, p) :: rest' when is_kw "and" (Ident a, p) -> conds acc rest'
      | [] -> List.rev acc
      | (_, pos) :: _ -> fail pos "expected AND or end of query")
    | (_, pos) :: _ -> fail pos "expected '='"
    | [] -> fail 0 "expected '=' in WHERE condition"
  in
  conds [] toks

(* ---- translation ---- *)

let query_of_string ~schema ~name sql =
  try
    let toks = tokenize sql in
    let toks =
      match toks with
      | t :: rest when is_kw "select" t -> rest
      | (_, pos) :: _ -> fail pos "expected SELECT"
      | [] -> fail 0 "empty query"
    in
    let select, toks = parse_select_list [] toks in
    let toks =
      match toks with
      | t :: rest when is_kw "from" t -> rest
      | (_, pos) :: _ -> fail pos "expected FROM"
      | [] -> fail 0 "expected FROM"
    in
    let froms, toks = parse_from toks in
    let conditions =
      match toks with
      | t :: rest when is_kw "where" t -> parse_where rest
      | [] -> []
      | (_, pos) :: _ -> fail pos "expected WHERE or end of query"
    in
    (* alias environment *)
    let aliases =
      List.fold_left
        (fun acc (table, alias, pos) ->
          if List.mem_assoc alias acc then fail pos "duplicate alias %s" alias;
          (match R.Schema.Db.find_opt schema table with
          | None -> fail pos "unknown table %s" table
          | Some _ -> ());
          (alias, table) :: acc)
        [] froms
      |> List.rev
    in
    let schema_of alias pos =
      match List.assoc_opt alias aliases with
      | Some table -> R.Schema.Db.find schema table
      | None -> fail pos "unknown table or alias %s" alias
    in
    let resolve (c : colref) =
      match c.table with
      | Some alias ->
        let s = schema_of alias c.at in
        (try (alias, R.Schema.attr_index s c.column)
         with Not_found -> fail c.at "no column %s in %s" c.column s.R.Schema.name)
      | None -> (
        let hits =
          List.filter_map
            (fun (alias, table) ->
              let s = R.Schema.Db.find schema table in
              try Some (alias, R.Schema.attr_index s c.column) with Not_found -> None)
            aliases
        in
        match hits with
        | [ hit ] -> hit
        | [] -> fail c.at "unknown column %s" c.column
        | _ -> fail c.at "ambiguous column %s (qualify it)" c.column)
    in
    (* union-find over (alias, col) cells, with optional constants *)
    let cells =
      List.concat_map
        (fun (alias, table) ->
          let s = R.Schema.Db.find schema table in
          List.init s.R.Schema.arity (fun i -> (alias, i)))
        aliases
    in
    let parent = Hashtbl.create 16 in
    let constant = Hashtbl.create 16 in
    let rec find c =
      match Hashtbl.find_opt parent c with
      | None -> c
      | Some p ->
        let r = find p in
        Hashtbl.replace parent c r;
        r
    in
    let union pos a b =
      let ra = find a and rb = find b in
      if ra <> rb then begin
        (match (Hashtbl.find_opt constant ra, Hashtbl.find_opt constant rb) with
        | Some va, Some vb when not (R.Value.equal va vb) ->
          fail pos "contradictory constants in WHERE"
        | Some va, _ -> Hashtbl.replace constant rb va
        | _ -> ());
        Hashtbl.remove constant ra;
        Hashtbl.replace parent ra rb
      end
    in
    let bind pos c v =
      let r = find c in
      match Hashtbl.find_opt constant r with
      | Some v' when not (R.Value.equal v v') -> fail pos "contradictory constants in WHERE"
      | _ -> Hashtbl.replace constant r v
    in
    List.iter
      (fun (lhs, rhs) ->
        match (lhs, rhs) with
        | Col a, Col b -> union a.at (resolve a) (resolve b)
        | Col a, Const v -> bind a.at (resolve a) v
        | Const v, Col b -> bind b.at (resolve b) v
        | Const a, Const b ->
          if not (R.Value.equal a b) then fail 0 "contradictory constants in WHERE")
      conditions;
    (* terms per cell *)
    let var_names = Hashtbl.create 16 in
    let counter = ref 0 in
    let term_of cell =
      let r = find cell in
      match Hashtbl.find_opt constant r with
      | Some v -> Term.Const v
      | None ->
        let v =
          match Hashtbl.find_opt var_names r with
          | Some v -> v
          | None ->
            incr counter;
            let v = Printf.sprintf "V%d" !counter in
            Hashtbl.replace var_names r v;
            v
        in
        Term.Var v
    in
    let atoms =
      List.map
        (fun (alias, table) ->
          let s = R.Schema.Db.find schema table in
          Atom.make table (List.init s.R.Schema.arity (fun i -> term_of (alias, i))))
        aliases
    in
    let head =
      List.concat_map
        (function
          | All -> List.map term_of cells
          | Item c -> [ term_of (resolve c) ])
        select
    in
    (* a head that is all constants cannot form a valid CQ head here *)
    let head =
      if List.exists Term.is_var head then head
      else
        match List.find_opt (fun cell -> Term.is_var (term_of cell)) cells with
        | Some cell -> head @ [ term_of cell ]
        | None -> head
    in
    if head = [] then fail 0 "empty SELECT list";
    let q = Query.make ~name ~head ~body:atoms in
    Query.check schema q;
    Ok q
  with
  | Err e -> Error e
  | Invalid_argument m -> Error { position = 0; message = m }
