(** Conjunctive queries in datalog style (§II.B):
    [Q(y1, ..., yk) :- T1(...), ..., Tq(...)].

    The head is a vector of terms (normally variables, possibly repeated,
    as in the paper's [Q2(y, y1, y, y2, y, y3)]); the body is a list of
    atoms. *)

type t = {
  name : string;
  head : Term.t list;
  body : Atom.t list;
}

val make : name:string -> head:Term.t list -> body:Atom.t list -> t

(** The width [arity(Q)]: the length of the head vector. *)
val arity : t -> int

(** All variables of the query. *)
val vars : t -> Term.Vars.t

(** Head variables [Var_h(Q)]. *)
val head_vars : t -> Term.Vars.t

(** Existential variables [Var_∃(Q)]: body variables not in the head. *)
val existential_vars : t -> Term.Vars.t

(** [check schema q] validates the query against the schema: known
    relations, correct atom arities, non-empty body and head, and safety
    (every head variable occurs in the body).
    Raises [Invalid_argument] with a descriptive message otherwise. *)
val check : Relational.Schema.Db.t -> t -> unit

(** Relation names in the body, without duplicates, in first-occurrence
    order. This is the hyperedge the query contributes to the dual
    hypergraph (§IV.B). *)
val relations : t -> string list

(** [substitute f q] — replace every variable [v] with [f v] (when
    [Some]) throughout head and body. Used to specialize queries for
    incremental maintenance and derivability checks. *)
val substitute : (string -> Term.t option) -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
