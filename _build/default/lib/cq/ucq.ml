module R = Relational

type t = {
  name : string;
  disjuncts : Query.t list;
}

let make ~name disjuncts =
  match disjuncts with
  | [] -> invalid_arg "Ucq.make: no disjuncts"
  | q :: rest ->
    let a = Query.arity q in
    if List.exists (fun q' -> Query.arity q' <> a) rest then
      invalid_arg "Ucq.make: disjuncts of different arity";
    { name; disjuncts }

let arity u = Query.arity (List.hd u.disjuncts)

let check schema u = List.iter (Query.check schema) u.disjuncts

let evaluate db u =
  List.fold_left
    (fun acc q -> R.Tuple.Set.union acc (Eval.evaluate db q))
    R.Tuple.Set.empty u.disjuncts

let why db u answer =
  List.concat_map (fun q -> Lineage.why db q answer) u.disjuncts

type outcome = {
  deletion : R.Stuple.Set.t;
  killed : (string * R.Tuple.t) list;
  side_effect : int;
}

let propagate ?(max_candidates = 18) db views ~deletions =
  let view_of name =
    match List.find_opt (fun u -> u.name = name) views with
    | Some u -> u
    | None -> invalid_arg ("Ucq.propagate: unknown view " ^ name)
  in
  (* validate and collect bad answers *)
  let collect () =
    List.concat_map
      (fun (name, tuples) ->
        let u = view_of name in
        let answers = evaluate db u in
        List.map
          (fun t ->
            if not (R.Tuple.Set.mem t answers) then raise Exit;
            (u, t))
          tuples)
      deletions
  in
  match collect () with
  | exception Exit -> None
  | [] -> Some { deletion = R.Stuple.Set.empty; killed = []; side_effect = 0 }
  | bad ->
    let candidates =
      List.fold_left
        (fun acc (u, t) ->
          List.fold_left R.Stuple.Set.union acc (why db u t))
        R.Stuple.Set.empty bad
      |> R.Stuple.Set.elements |> Array.of_list
    in
    let n = Array.length candidates in
    if n > max_candidates then
      invalid_arg (Printf.sprintf "Ucq.propagate: %d candidates exceed %d" n max_candidates);
    let before = List.map (fun u -> (u, evaluate db u)) views in
    let bad_keys = List.map (fun (u, t) -> (u.name, t)) bad in
    let best = ref None in
    for mask = 0 to (1 lsl n) - 1 do
      let dd = ref R.Stuple.Set.empty in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then dd := R.Stuple.Set.add candidates.(i) !dd
      done;
      let db' = R.Instance.delete db !dd in
      let killed =
        List.concat_map
          (fun (u, old) ->
            R.Tuple.Set.elements (R.Tuple.Set.diff old (evaluate db' u))
            |> List.map (fun t -> (u.name, t)))
          before
      in
      let feasible = List.for_all (fun b -> List.mem b killed) bad_keys in
      if feasible then begin
        let side_effect =
          List.length (List.filter (fun k -> not (List.mem k bad_keys)) killed)
        in
        match !best with
        | Some (s, _, _) when s <= side_effect -> ()
        | _ -> best := Some (side_effect, !dd, killed)
      end
    done;
    Option.map
      (fun (side_effect, deletion, killed) -> { deletion; killed; side_effect })
      !best

let pp ppf u =
  Format.fprintf ppf "@[<v>%s = union of:@ %a@]" u.name
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Query.pp)
    u.disjuncts
