(** Non-recursive datalog programs: views defined over views.

    A program is a set of rules; predicates with rules are intensional
    (IDB), everything else is a schema relation (EDB). Unfolding inlines
    IDB atoms — each rule choice contributing a disjunct — turning any
    IDB predicate into a {!Ucq} over the EDB alone. Deletion propagation
    through stacked views then reduces to the UCQ machinery: real
    systems define views over views, and this is the bridge that keeps
    them inside the paper's SPJU fragment. Recursion is rejected. *)

type t = private {
  rules : Query.t list;
}

type error =
  | Recursive of string list      (** a dependency cycle, as predicate names *)
  | Unsafe of string              (** rule with an unsafe head variable *)
  | Unknown_predicate of string

val pp_error : Format.formatter -> error -> unit

(** [make ~schema rules] — rules may use schema relations and other
    rules' head predicates in their bodies; the dependency graph must be
    acyclic; every rule must be safe. *)
val make : schema:Relational.Schema.Db.t -> Query.t list -> (t, error) Stdlib.result

(** IDB predicate names, in rule order (no duplicates). *)
val predicates : t -> string list

(** Direct dependencies of a predicate (IDB names only). *)
val depends_on : t -> string -> string list

(** [unfold program ~schema name] — the predicate as a union of
    conjunctive queries over EDB relations only. Distinct disjuncts are
    deduplicated up to equivalence. *)
val unfold :
  t -> schema:Relational.Schema.Db.t -> string -> (Ucq.t, error) Stdlib.result

(** Evaluate an IDB predicate (by unfolding). *)
val evaluate :
  t ->
  Relational.Instance.t ->
  string ->
  (Relational.Tuple.Set.t, error) Stdlib.result
