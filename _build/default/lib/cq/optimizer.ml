module R = Relational

let max_dp_atoms = 10

(* selectivity of placing [atom] when the variables in [bound] are already
   fixed: product over columns holding a constant or a bound variable of
   1/distinct(col); repeated fresh variables within the atom contribute
   one extra 1/distinct per repetition *)
let atom_estimate db (atom : Atom.t) bound =
  let rel =
    match R.Instance.relation_opt db atom.rel with
    | Some r -> r
    | None -> invalid_arg ("Optimizer: unknown relation " ^ atom.rel)
  in
  let base = float_of_int (max 1 (R.Relation.cardinal rel)) in
  let seen = Hashtbl.create 4 in
  let sel = ref 1.0 in
  Array.iteri
    (fun col term ->
      let distinct = float_of_int (max 1 (R.Relation.distinct_in_column rel col)) in
      match term with
      | Term.Const _ -> sel := !sel /. distinct
      | Term.Var v ->
        if Term.Vars.mem v bound || Hashtbl.mem seen v then sel := !sel /. distinct
        else Hashtbl.add seen v ())
    atom.args;
  base *. !sel

let order db (q : Query.t) =
  let atoms = Array.of_list q.body in
  let n = Array.length atoms in
  if n = 0 then [||]
  else if n > max_dp_atoms then Array.init n Fun.id
  else begin
    let vars = Array.map Atom.var_set atoms in
    (* dp.(mask) = Some (cost, est_rows, order_rev) *)
    let dp = Array.make (1 lsl n) None in
    dp.(0) <- Some (0.0, 1.0, []);
    for mask = 0 to (1 lsl n) - 1 do
      match dp.(mask) with
      | None -> ()
      | Some (cost, rows, order_rev) ->
        let bound =
          List.fold_left
            (fun acc i -> Term.Vars.union acc vars.(i))
            Term.Vars.empty order_rev
        in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 then begin
            let est = atom_estimate db atoms.(i) bound in
            let rows' = Float.max 1.0 (rows *. est) in
            let cost' = cost +. rows' in
            let mask' = mask lor (1 lsl i) in
            match dp.(mask') with
            | Some (c, _, _) when c <= cost' -> ()
            | _ -> dp.(mask') <- Some (cost', rows', i :: order_rev)
          end
        done
    done;
    match dp.((1 lsl n) - 1) with
    | Some (_, _, order_rev) -> Array.of_list (List.rev order_rev)
    | None -> Array.init n Fun.id
  end

let estimated_rows db (q : Query.t) =
  let atoms = Array.of_list q.body in
  let p = order db q in
  let rows = ref 1.0 in
  let bound = ref Term.Vars.empty in
  Array.iter
    (fun i ->
      rows := Float.max 1.0 (!rows *. atom_estimate db atoms.(i) !bound);
      bound := Term.Vars.union !bound (Atom.var_set atoms.(i)))
    p;
  !rows
