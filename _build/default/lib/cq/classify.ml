let is_project_free (q : Query.t) =
  let hv = Query.head_vars q in
  List.for_all
    (fun a -> Term.Vars.subset (Atom.var_set a) hv)
    q.body

let is_self_join_free (q : Query.t) =
  let rels = List.map (fun (a : Atom.t) -> a.rel) q.body in
  List.length rels = List.length (List.sort_uniq String.compare rels)

let key_preserving_violations schema (q : Query.t) =
  let hv = Query.head_vars q in
  List.concat_map
    (fun a ->
      Term.Vars.fold
        (fun v acc -> if Term.Vars.mem v hv then acc else (a, v) :: acc)
        (Atom.key_vars schema a) [])
    q.body

let is_key_preserving schema q = key_preserving_violations schema q = []

type profile = {
  project_free : bool;
  self_join_free : bool;
  key_preserving : bool;
}

let profile schema q =
  {
    project_free = is_project_free q;
    self_join_free = is_self_join_free q;
    key_preserving = is_key_preserving schema q;
  }

let pp_profile ppf p =
  let flag name b = if b then name else "non-" ^ name in
  Format.fprintf ppf "%s, %s, %s"
    (flag "project-free" p.project_free)
    (flag "sj-free" p.self_join_free)
    (flag "key-preserving" p.key_preserving)

let check_key_preserving schema qs =
  List.iter
    (fun (q : Query.t) ->
      match key_preserving_violations schema q with
      | [] -> ()
      | (a, v) :: _ ->
        invalid_arg
          (Format.asprintf
             "query %s is not key preserving: key variable %s of %a missing from head"
             q.name v Atom.pp a))
    qs
