module R = Relational

let holds db q answer = R.Tuple.Set.mem answer (Eval.evaluate db q)

let lineage_tuples db q answer =
  Lineage.why db q answer
  |> List.fold_left R.Stuple.Set.union R.Stuple.Set.empty

let is_counterfactual db q ~answer t =
  holds db q answer
  && not (holds (R.Instance.delete db (R.Stuple.Set.singleton t)) q answer)

(* minimum contingency size making [t] counterfactual; None if not a cause *)
let min_contingency ?(max_candidates = 16) db q ~answer t =
  if not (holds db q answer) then None
  else begin
    let candidates =
      R.Stuple.Set.remove t (lineage_tuples db q answer) |> R.Stuple.Set.elements |> Array.of_list
    in
    let n = Array.length candidates in
    if n > max_candidates then
      invalid_arg
        (Printf.sprintf "Causality: %d lineage tuples exceed the limit %d" n max_candidates);
    (* search subsets in increasing size *)
    let rec by_size k =
      if k > n then None
      else begin
        (* enumerate k-subsets *)
        let found = ref None in
        let rec choose start acc remaining =
          if !found <> None then ()
          else if remaining = 0 then begin
            let gamma = R.Stuple.Set.of_list acc in
            let db' = R.Instance.delete db gamma in
            if
              holds db' q answer
              && not (holds (R.Instance.delete db' (R.Stuple.Set.singleton t)) q answer)
            then found := Some k
          end
          else
            for i = start to n - remaining do
              choose (i + 1) (candidates.(i) :: acc) (remaining - 1)
            done
        in
        choose 0 [] k;
        match !found with Some k -> Some k | None -> by_size (k + 1)
      end
    in
    by_size 0
  end

let is_cause ?max_candidates db q ~answer t =
  min_contingency ?max_candidates db q ~answer t <> None

let responsibility ?max_candidates db q ~answer t =
  match min_contingency ?max_candidates db q ~answer t with
  | Some k -> 1.0 /. (1.0 +. float_of_int k)
  | None -> 0.0

let ranking ?max_candidates db q ~answer =
  lineage_tuples db q answer
  |> R.Stuple.Set.elements
  |> List.map (fun t -> (t, responsibility ?max_candidates db q ~answer t))
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
