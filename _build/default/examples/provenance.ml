(* Provenance and causality (§V: "the connection with why-provenance,
   where-provenance"; Meliou et al. on causality, the paper's [33]-[35]).

   For a suspicious answer, inspect: WHY it holds (its witnesses), WHERE
   its values were copied from (cell lineage), WHO is most responsible
   (causality ranking) — and how deletion propagation turns that analysis
   into a minimal repair.

   Run with: dune exec examples/provenance.exe *)

module R = Relational
module D = Deleprop

let () =
  let db = Workload.Author_journal.db () in
  let q3 = Workload.Author_journal.q3 in
  let answer = R.Tuple.strs [ "John"; "XML" ] in
  Format.printf "suspicious answer: %a in Q3(D)@.@." R.Tuple.pp answer;

  (* WHY: the derivations *)
  let whys = Cq.Lineage.why db q3 answer in
  Format.printf "--- why-provenance: %d derivation(s) ---@." (List.length whys);
  List.iteri
    (fun i w ->
      Format.printf "  %d: {%s}@." (i + 1)
        (String.concat ", " (List.map R.Stuple.to_string (R.Stuple.Set.elements w))))
    whys;

  (* WHERE: cell lineage per head position *)
  let q4 = Workload.Author_journal.q4 in
  let full = R.Tuple.strs [ "John"; "TKDE"; "XML" ] in
  Format.printf "@.--- where-provenance of %a in Q4(D) ---@." R.Tuple.pp full;
  let cells = Cq.Lineage.where_ db q4 full in
  Array.iteri
    (fun pos cs ->
      Format.printf "  position %d copies from: %s@." pos
        (String.concat ", " (List.map (Format.asprintf "%a" Cq.Lineage.pp_cell) cs)))
    cells;

  (* WHO: responsibility ranking *)
  Format.printf "@.--- causality ranking for %a ---@." R.Tuple.pp answer;
  List.iter
    (fun (t, r) -> Format.printf "  %a: responsibility %.2f@." R.Stuple.pp t r)
    (Cq.Causality.ranking db q3 ~answer);
  Format.printf
    "(each tuple needs one contingency deletion before it becomes@.\
    \ counterfactual: responsibility 1/2 across the board)@.";

  (* REPAIR: deletion propagation closes the loop *)
  Format.printf "@.--- repair by deletion propagation ---@.";
  let p = Workload.Author_journal.scenario_q3 () in
  match D.Brute.solve_ground_truth p with
  | Some r ->
    Format.printf "optimal ΔD = {%s}, side-effect %g@."
      (String.concat ", " (List.map R.Stuple.to_string (R.Stuple.Set.elements r.D.Brute.deletion)))
      r.D.Brute.outcome.D.Side_effect.cost;
    Format.printf
      "The repair hits every witness of the why-provenance — provenance@.\
       analysis and deletion propagation are two views of the same lineage.@."
  | None -> Format.printf "no repair?!@."
