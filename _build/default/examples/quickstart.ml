(* Quickstart: the paper's Fig. 1 example, end to end.

   Build a database, define key-preserving conjunctive queries, declare
   the view tuples to delete, and let the library propagate the deletion
   to the source tables with minimum view side-effect.

   Run with: dune exec examples/quickstart.exe *)

module R = Relational
module D = Deleprop

let () =
  (* 1. Schema and data: authors publish in journals; journals cover topics.
        Keys are starred in the serialization format. *)
  let db =
    R.Serial.instance_of_string
      {|
        rel T1(AuName*, Journal*)
        T1(Joe,  TKDE)
        T1(John, TKDE)
        T1(Tom,  TKDE)
        T1(John, TODS)
        rel T2(Journal*, Topic*, Papers)
        T2(TKDE, XML,  30)
        T2(TKDE, CUBE, 30)
        T2(TODS, XML,  30)
      |}
  in
  Format.printf "--- source database ---@.%a@.@." R.Instance.pp db;

  (* 2. A key-preserving conjunctive query: which author covers which
        topic, through which journal? All key variables (X, Y of T1;
        Y, Z of T2) appear in the head. *)
  let q4 = Cq.Parser.query_of_string "Q4(X, Y, Z) :- T1(X, Y), T2(Y, Z, W)" in
  let schema = R.Instance.schema db in
  assert (Cq.Classify.is_key_preserving schema q4);

  (* 3. The materialized view. *)
  let view = Cq.Eval.evaluate db q4 in
  Format.printf "--- view Q4(D), %d tuples ---@." (R.Tuple.Set.cardinal view);
  R.Tuple.Set.iter (fun t -> Format.printf "  %a@." R.Tuple.pp t) view;

  (* 4. The deletion request: (John, TKDE, XML) must disappear from the
        view. Which source tuples should go? *)
  let problem =
    D.Problem.make ~db ~queries:[ q4 ]
      ~deletions:[ ("Q4", [ R.Tuple.strs [ "John"; "TKDE"; "XML" ] ]) ]
      ()
  in
  let prov = D.Provenance.build problem in

  (* 5. Because Q4 is key preserving, the view tuple has a unique witness:
        the two source tuples that join into it. Deleting either one
        works; they differ in collateral damage. *)
  let vt = D.Vtuple.make "Q4" (R.Tuple.strs [ "John"; "TKDE"; "XML" ]) in
  Format.printf "@.--- witness of %a ---@." D.Vtuple.pp vt;
  R.Stuple.Set.iter
    (fun st ->
      let o = D.Side_effect.eval prov (R.Stuple.Set.singleton st) in
      Format.printf "  delete %a -> side-effect %g@." R.Stuple.pp st o.D.Side_effect.cost)
    (D.Provenance.witness_of prov vt);

  (* 6. Solve optimally (small instance) and with the approximations. *)
  let opt = Option.get (D.Brute.solve prov) in
  Format.printf "@.--- optimal propagation ---@.";
  Format.printf "%a@." D.Side_effect.pp opt.D.Brute.outcome;
  R.Stuple.Set.iter (fun t -> Format.printf "  delete %a@." R.Stuple.pp t) opt.D.Brute.deletion;

  let pd = D.Primal_dual.solve prov in
  let ld = D.Lowdeg.solve prov in
  Format.printf "@.primal-dual (Alg. 1) cost: %g@." pd.D.Primal_dual.outcome.D.Side_effect.cost;
  Format.printf "lowdeg      (Alg. 3) cost: %g@." ld.D.Lowdeg.outcome.D.Side_effect.cost;
  Format.printf "@.Both match the optimum %g on this instance.@."
    opt.D.Brute.outcome.D.Side_effect.cost
