(* Query-oriented data cleaning (§V of the paper, in the style of QOCO).

   A dirty HR database is probed with several analyst queries; a domain
   expert flags wrong answers in each query result. The whole batch of
   feedback is propagated at once with minimum view side-effect — the
   batch guarantee the paper contributes, avoiding the order-dependence
   of per-answer processing.

   Two rounds:
   - complete feedback: every symptom of the errors is flagged, and the
     propagation is side-effect free (the paper: "if the views and view
     deletions are given completely, we can always find the view
     side-effect free solutions");
   - incomplete feedback: one symptom is missed, and the best batch
     repair must damage exactly one good answer.

   Run with: dune exec examples/data_cleaning.exe *)

module R = Relational
module D = Deleprop

let db () =
  (* the dirty bits: dana was mis-assigned to sales, and the sales
     department was mis-located in berlin *)
  R.Serial.instance_of_string
    {|
      rel Emp(name*, dept)
      Emp(alice, eng)
      Emp(bob,   eng)
      Emp(carol, sales)
      Emp(dana,  sales)      # wrong: dana is in hr
      rel Dept(dname*, city)
      Dept(eng,   paris)
      Dept(sales, berlin)    # wrong: sales is in madrid
      Dept(hr,    madrid)
      rel Badge(name*, level)
      Badge(alice, 3)
      Badge(bob,   1)
      Badge(carol, 2)
      Badge(dana,  2)
    |}

let queries =
  Cq.Parser.queries_of_string
    {|
      Qloc(N, DD, C) :- Emp(N, DD), Dept(DD, C)
      Qsec(N, DD, L) :- Emp(N, DD), Badge(N, L)
    |}

let show_repair label problem =
  let prov = D.Provenance.build problem in
  let opt = Option.get (D.Brute.solve prov) in
  Format.printf "@.%s@.optimal batch repair (side-effect %g):@." label
    opt.D.Brute.outcome.D.Side_effect.cost;
  R.Stuple.Set.iter
    (fun t -> Format.printf "  remove %a@." R.Stuple.pp t)
    opt.D.Brute.deletion;
  if not (D.Vtuple.Set.is_empty opt.D.Brute.outcome.D.Side_effect.side_effect) then begin
    Format.printf "collateral damage:@.";
    D.Vtuple.Set.iter
      (fun vt -> Format.printf "  loses %a@." D.Vtuple.pp vt)
      opt.D.Brute.outcome.D.Side_effect.side_effect
  end;
  let greedy = D.Single_query.solve_greedy_multi prov in
  Format.printf "per-answer greedy baseline: side-effect %g@."
    greedy.D.Single_query.outcome.D.Side_effect.cost;
  opt

let () =
  let db = db () in
  Format.printf "--- analyst views over the dirty database ---@.";
  List.iter
    (fun (q : Cq.Query.t) ->
      Format.printf "%s:@." q.name;
      R.Tuple.Set.iter (fun t -> Format.printf "  %a@." R.Tuple.pp t) (Cq.Eval.evaluate db q))
    queries;

  (* round 1: the expert catches every symptom of the two errors *)
  let complete =
    D.Problem.make ~db ~queries
      ~deletions:
        [
          ("Qloc", [ R.Tuple.strs [ "dana"; "sales"; "berlin" ];
                     R.Tuple.strs [ "carol"; "sales"; "berlin" ] ]);
          ("Qsec", [ R.Tuple.of_list
                       [ R.Value.str "dana"; R.Value.str "sales"; R.Value.int 2 ] ]);
        ]
      ()
  in
  let opt = show_repair "=== round 1: complete feedback (all 3 symptoms flagged) ===" complete in

  (* round 2: the expert misses dana's badge symptom; now any repair of
     dana's assignment also kills her unflagged (still-listed) badge
     answer, or carol's unflagged location — minimum side-effect 1 *)
  let incomplete =
    D.Problem.make ~db ~queries
      ~deletions:[ ("Qloc", [ R.Tuple.strs [ "dana"; "sales"; "berlin" ] ]) ]
      ()
  in
  ignore (show_repair "=== round 2: incomplete feedback (1 of 3 symptoms flagged) ===" incomplete);

  Format.printf
    "@.Complete multi-view feedback admits a side-effect-free batch repair;@.\
     incomplete feedback forces a minimum-damage recommendation instead —@.\
     exactly the QOCO-style workflow of §V.@.";

  let repaired = R.Instance.delete db opt.D.Brute.deletion in
  Format.printf "@.--- repaired database (round 1 plan) ---@.%a@." R.Instance.pp repaired
