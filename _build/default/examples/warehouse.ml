(* Grand tour: a retail warehouse end to end.

   Four source tables, three analyst views, and one full maintenance
   session: classify the query set, look at instance statistics, take
   expert feedback on two views at once, compare objectives (view
   side-effect, balanced, source side-effect, bounded), apply the chosen
   plan on the materialized-view manager, and finally patch a missing
   answer by insertion propagation.

   Run with: dune exec examples/warehouse.exe *)

module R = Relational
module D = Deleprop

let db () =
  R.Serial.instance_of_string
    {|
      rel Product(sku*, category)
      Product(p1, bikes)
      Product(p2, bikes)
      Product(p3, tools)
      Product(p4, tools)
      rel Stock(sku*, site*, qty)
      Stock(p1, berlin, 10)
      Stock(p2, berlin, 0)
      Stock(p2, lyon,   5)
      Stock(p3, lyon,   7)
      Stock(p4, berlin, 2)
      rel Site(site*, region)
      Site(berlin, eu-central)
      Site(lyon,   eu-west)
      rel Price(sku*, amount)
      Price(p1, 900)
      Price(p2, 1100)
      Price(p3, 40)
      Price(p4, 60)
    |}

let queries =
  Cq.Parser.queries_of_string
    {|
      Qavail(SKU, CAT, SITE, QTY) :- Product(SKU, CAT), Stock(SKU, SITE, QTY)
      Qregion(SKU, SITE, REG) :- Stock(SKU, SITE, QTY), Site(SITE, REG)
      Qprice(SKU, CAT, AMT) :- Product(SKU, CAT), Price(SKU, AMT)
    |}

let () =
  let db = db () in
  let schema = R.Instance.schema db in

  Format.printf "=== 1. classification ===@.";
  List.iter
    (fun (q : Cq.Query.t) ->
      Format.printf "%s: %a@." q.name Cq.Classify.pp_profile (Cq.Classify.profile schema q))
    queries;
  Format.printf "forest case: %b@." (Hypergraph.Dual.is_forest_case queries);

  (* expert feedback: p2 was discontinued — its berlin availability row
     and its price row are both wrong *)
  let problem =
    D.Problem.make ~db ~queries
      ~deletions:
        [
          ("Qavail", [ R.Tuple.of_list
                         [ R.Value.str "p2"; R.Value.str "bikes"; R.Value.str "berlin";
                           R.Value.int 0 ] ]);
          ("Qprice", [ R.Tuple.of_list
                         [ R.Value.str "p2"; R.Value.str "bikes"; R.Value.int 1100 ] ]);
        ]
      ()
  in
  let prov = D.Provenance.build problem in

  Format.printf "@.=== 2. instance statistics ===@.%a@." D.Stats.pp (D.Stats.compute prov);

  Format.printf "@.=== 3. solver portfolio ===@.";
  List.iter
    (fun (e : D.Portfolio.entry) ->
      Format.printf "  %-12s cost %-4g (%.2f ms)@." e.D.Portfolio.algorithm
        e.D.Portfolio.outcome.D.Side_effect.cost e.D.Portfolio.elapsed_ms)
    (D.Portfolio.run prov);
  let best = D.Portfolio.best prov in
  Format.printf "winner: %s@.%a@." best.D.Portfolio.algorithm D.Explain.pp
    (D.Explain.explain prov best.D.Portfolio.deletion);

  Format.printf "@.=== 4. objectives compared ===@.";
  let bal = D.Balanced.solve_exact prov in
  Format.printf "balanced optimum: %g (repairs? %b)@."
    bal.D.Balanced.outcome.D.Side_effect.balanced_cost
    bal.D.Balanced.outcome.D.Side_effect.feasible;
  (match D.Source_side_effect.solve_exact prov with
  | Some s ->
    Format.printf "source optimum: %g tuple(s), view damage %g@."
      s.D.Source_side_effect.source_cost s.D.Source_side_effect.outcome.D.Side_effect.cost
  | None -> ());
  List.iter
    (fun (k, (r : D.Bounded.result)) ->
      Format.printf "budget k=%d: side-effect %g@." k r.D.Bounded.outcome.D.Side_effect.cost)
    (D.Bounded.frontier ~slack:2 prov);

  Format.printf "@.=== 5. apply on the view manager ===@.";
  let mv = D.Matview.create db queries in
  let mv = D.Matview.delete mv best.D.Portfolio.deletion in
  List.iter
    (fun (q : Cq.Query.t) ->
      Format.printf "%s now has %d tuples@." q.name
        (R.Tuple.Set.cardinal (D.Matview.view mv q.name)))
    queries;

  Format.printf "@.=== 6. a missing answer ===@.";
  let fresh_problem = D.Problem.make ~db:(D.Matview.db mv) ~queries ~deletions:[] () in
  match
    D.Insertion.solve fresh_problem ~query:"Qavail"
      ~target:(R.Tuple.of_list
                 [ R.Value.str "p3"; R.Value.str "tools"; R.Value.str "berlin"; R.Value.int 9 ])
  with
  | Ok r ->
    R.Stuple.Set.iter (fun t -> Format.printf "  + %a@." R.Stuple.pp t) r.D.Insertion.insertions;
    Format.printf "  collateral new answers: %g@." r.D.Insertion.side_effect
  | Error e -> Format.printf "  insertion failed: %a@." D.Insertion.pp_error e
