(* Balanced deletion propagation (§III and §V of the paper).

   Crowd feedback is noisy: a flagged view tuple may not really be wrong,
   and repairing it can destroy many good answers. The balanced objective
   trades "bad tuples kept" against "good tuples lost". Sweeping the
   confidence weight on the flagged tuple traces the trade-off and shows
   where the solver flips from keeping to repairing.

   Run with: dune exec examples/balanced_tradeoff.exe *)

module R = Relational
module D = Deleprop

let db () =
  R.Serial.instance_of_string
    {|
      rel Shop(shop*, rating)
      Shop(acme,  4)
      Shop(bazar, 5)
      rel Listing(id*, shop)
      Listing(l1, acme)
      Listing(l2, acme)
      Listing(l3, acme)
      Listing(l4, bazar)
    |}

(* two storefront views: shop ratings, and listings enriched with them *)
let qrating = Cq.Parser.query_of_string "Qrating(S, RS) :- Shop(S, RS)"
let qlist = Cq.Parser.query_of_string "Qlist(L, S, RS) :- Listing(L, S), Shop(S, RS)"

let () =
  let db = db () in
  (* the crowd flags acme's rating — repairing it means deleting
     Shop(acme, 4), which would take three enriched listings with it *)
  let flagged = R.Tuple.of_list [ R.Value.str "acme"; R.Value.int 4 ] in
  Format.printf "crowd flags rating %a as wrong@." R.Tuple.pp flagged;
  Format.printf "the only repair deletes Shop(acme, 4), killing 3 good listings@.@.";
  Format.printf "%-12s  %-14s  %-16s  %s@." "confidence" "balanced cost" "decision" "deleted";
  List.iter
    (fun confidence ->
      let weights =
        D.Weights.set D.Weights.uniform (D.Vtuple.make "Qrating" flagged) confidence
      in
      let p =
        D.Problem.make ~db ~queries:[ qrating; qlist ]
          ~deletions:[ ("Qrating", [ flagged ]) ]
          ~weights ()
      in
      let prov = D.Provenance.build p in
      let r = D.Balanced.solve_exact prov in
      let o = r.D.Balanced.outcome in
      Format.printf "%-12g  %-14g  %-16s  %s@." confidence o.D.Side_effect.balanced_cost
        (if o.D.Side_effect.feasible then "repair" else "keep the flag")
        (if R.Stuple.Set.is_empty r.D.Balanced.deletion then "-"
         else
           String.concat ", "
             (List.map R.Stuple.to_string (R.Stuple.Set.elements r.D.Balanced.deletion))))
    [ 0.5; 1.0; 2.0; 3.0; 4.0; 10.0 ];

  (* the standard objective must repair, whatever the damage *)
  let p =
    D.Problem.make ~db ~queries:[ qrating; qlist ] ~deletions:[ ("Qrating", [ flagged ]) ] ()
  in
  let prov = D.Provenance.build p in
  let std = Option.get (D.Brute.solve prov) in
  Format.printf "@.standard objective (must repair): side-effect %g@."
    std.D.Brute.outcome.D.Side_effect.cost;
  Format.printf
    "@.With confidence below 3 (the repair damage) the balanced optimum@.\
     keeps the flagged rating; above 3 it repairs — the trade-off the@.\
     paper motivates for incomplete crowd feedback (§III, §V).@."
