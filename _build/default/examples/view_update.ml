(* View update, both directions (§VI of the paper: deletion propagation is
   a special view update problem).

   An editor looks at a materialized catalog view and issues two kinds of
   feedback: "this row is wrong, remove it" (deletion propagation, the
   paper's core problem) and "this row is missing, it should be here"
   (insertion propagation, the classic view-update companion). Both are
   translated back to the source tables with minimum collateral change.

   Run with: dune exec examples/view_update.exe *)

module R = Relational
module D = Deleprop

let db () =
  R.Serial.instance_of_string
    {|
      rel Author(name*, journal*)
      Author(joe,  tkde)
      Author(john, tkde)
      Author(tom,  tkde)
      Author(john, tods)
      rel Journal(journal*, topic*, papers)
      Journal(tkde, xml,  30)
      Journal(tkde, cube, 30)
      Journal(tods, xml,  30)
    |}

let q = Cq.Parser.query_of_string "Catalog(A, J, T) :- Author(A, J), Journal(J, T, N)"

let () =
  let db = db () in
  let problem = D.Problem.make ~db ~queries:[ q ] ~deletions:[] () in
  Format.printf "--- the catalog view ---@.";
  R.Tuple.Set.iter
    (fun t -> Format.printf "  %a@." R.Tuple.pp t)
    (Cq.Eval.evaluate db q);

  (* 1. DELETE: (john, tkde, xml) is wrong *)
  Format.printf "@.=== editor: remove (john, tkde, xml) ===@.";
  let del_problem =
    D.Problem.make ~db ~queries:[ q ]
      ~deletions:[ ("Catalog", [ R.Tuple.strs [ "john"; "tkde"; "xml" ] ]) ]
      ()
  in
  let prov = D.Provenance.build del_problem in
  let best = D.Portfolio.best prov in
  Format.printf "portfolio winner: %s (%.2f ms)@." best.D.Portfolio.algorithm
    best.D.Portfolio.elapsed_ms;
  Format.printf "%a@." D.Explain.pp (D.Explain.explain prov best.D.Portfolio.deletion);

  (* 2. INSERT: (alice, tkde, xml) is missing *)
  Format.printf "@.=== editor: (alice, tkde, xml) should be in the catalog ===@.";
  (match
     D.Insertion.solve problem ~query:"Catalog"
       ~target:(R.Tuple.strs [ "alice"; "tkde"; "xml" ])
   with
  | Error e -> Format.printf "insertion failed: %a@." D.Insertion.pp_error e
  | Ok r ->
    Format.printf "insert %d source tuple(s):@."
      (R.Stuple.Set.cardinal r.D.Insertion.insertions);
    R.Stuple.Set.iter (fun t -> Format.printf "  + %a@." R.Stuple.pp t) r.D.Insertion.insertions;
    Format.printf "collateral new view tuples (%g):@." r.D.Insertion.side_effect;
    D.Vtuple.Set.iter
      (fun vt -> Format.printf "  ~ %a@." D.Vtuple.pp vt)
      r.D.Insertion.new_views);

  (* 3. INSERT needing a brand-new journal: two insertions, no collateral *)
  Format.printf "@.=== editor: (bob, jacm, theory) should be in the catalog ===@.";
  match
    D.Insertion.solve problem ~query:"Catalog"
      ~target:(R.Tuple.strs [ "bob"; "jacm"; "theory" ])
  with
  | Error e -> Format.printf "insertion failed: %a@." D.Insertion.pp_error e
  | Ok r ->
    Format.printf "insert %d source tuple(s):@."
      (R.Stuple.Set.cardinal r.D.Insertion.insertions);
    R.Stuple.Set.iter (fun t -> Format.printf "  + %a@." R.Stuple.pp t) r.D.Insertion.insertions;
    Format.printf "collateral new view tuples: %g (fresh values cannot join)@."
      r.D.Insertion.side_effect
