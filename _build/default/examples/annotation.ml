(* Data annotation / error localization (§V of the paper).

   "The more queries and views, the closer we approach the side-effect
   free solution": an error surfaces in one view; the candidate source
   tuples to blame are many. Feedback on a SECOND view shrinks the
   candidates — deletion propagation across multiple queries localizes
   the error more accurately than any single view can.

   Run with: dune exec examples/annotation.exe *)

module R = Relational
module D = Deleprop

let db () =
  (* gateways have a region and a calibration factor; sensors report
     through gateways. The corrupt row: Calib(g1, 2) should be 7. *)
  R.Serial.instance_of_string
    {|
      rel Reading(sensor*, gateway)
      Reading(s1, g1)
      Reading(s2, g1)
      Reading(s3, g2)
      rel Gateway(gw*, region)
      Gateway(g1, north)
      Gateway(g2, south)
      rel Calib(gw*, factor)
      Calib(g1, 2)          # corrupt: should be 7
      Calib(g2, 3)
    |}

(* Two monitoring views: per-gateway configuration, and per-sensor
   effective calibration. Both are key preserving. *)
let qpair = Cq.Parser.query_of_string "Qpair(G, RG, F) :- Gateway(G, RG), Calib(G, F)"
let qcal = Cq.Parser.query_of_string "Qcal(S, G, F) :- Reading(S, G), Calib(G, F)"

(* a third, untouched view: per-sensor regions — its answers are correct
   and act as the "good answers" any repair should preserve *)
let qregion = Cq.Parser.query_of_string "Qregion(S, G, RG) :- Reading(S, G), Gateway(G, RG)"

let print_diagnosis label problem =
  let prov = D.Provenance.build problem in
  match D.Diagnosis.diagnose prov with
  | None -> Format.printf "%s: infeasible?!@." label
  | Some d ->
    Format.printf "%s: %d minimal optimal annotation(s)@." label
      (List.length d.D.Diagnosis.plans);
    List.iter
      (fun s ->
        Format.printf "  {%s}@."
          (String.concat ", " (List.map R.Stuple.to_string (R.Stuple.Set.elements s))))
      d.D.Diagnosis.plans;
    Format.printf "  certain: {%s}@."
      (String.concat ", "
         (List.map R.Stuple.to_string (R.Stuple.Set.elements d.D.Diagnosis.certain)))

let () =
  let db = db () in
  (* The configuration summary (g1, north, 2) is known to be wrong — but is
     the REGION wrong or the CALIBRATION? One view cannot tell: both
     witness tuples are equally blamable. *)
  let p1 =
    D.Problem.make ~db ~queries:[ qpair; qcal; qregion ]
      ~deletions:[ ("Qpair", [ R.Tuple.of_list
                                 [ R.Value.str "g1"; R.Value.str "north"; R.Value.int 2 ] ]) ]
      ()
  in
  Format.printf "--- feedback on one view only ---@.";
  print_diagnosis "Qpair alone" p1;

  (* The per-sensor view is also wrong for every sensor on g1 — evidence
     that points at the calibration row, not the region. *)
  let p2 =
    D.Problem.make ~db ~queries:[ qpair; qcal; qregion ]
      ~deletions:
        [
          ("Qpair", [ R.Tuple.of_list
                        [ R.Value.str "g1"; R.Value.str "north"; R.Value.int 2 ] ]);
          ("Qcal", [ R.Tuple.of_list [ R.Value.str "s1"; R.Value.str "g1"; R.Value.int 2 ];
                     R.Tuple.of_list [ R.Value.str "s2"; R.Value.str "g1"; R.Value.int 2 ] ]);
        ]
      ()
  in
  Format.printf "@.--- feedback on two views ---@.";
  print_diagnosis "Qpair + Qcal" p2;

  Format.printf
    "@.One view leaves the blame ambiguous (gateway row vs calibration@.\
     row); merging deletions from a second view isolates Calib(g1, 2) —@.\
     the paper's data-annotation motivation for multiple queries (§V).@."
