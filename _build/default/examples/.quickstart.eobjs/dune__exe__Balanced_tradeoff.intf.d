examples/balanced_tradeoff.mli:
