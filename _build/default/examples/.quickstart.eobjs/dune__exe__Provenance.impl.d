examples/provenance.ml: Array Cq Deleprop Format List Relational String Workload
