examples/view_update.ml: Cq Deleprop Format Relational
