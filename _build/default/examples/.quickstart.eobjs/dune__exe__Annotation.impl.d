examples/annotation.ml: Cq Deleprop Format List Relational String
