examples/warehouse.mli:
