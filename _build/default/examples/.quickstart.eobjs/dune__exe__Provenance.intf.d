examples/provenance.mli:
