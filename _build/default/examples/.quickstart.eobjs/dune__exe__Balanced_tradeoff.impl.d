examples/balanced_tradeoff.ml: Cq Deleprop Format List Option Relational String
