examples/annotation.mli:
