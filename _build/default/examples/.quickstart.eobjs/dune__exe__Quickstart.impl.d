examples/quickstart.ml: Cq Deleprop Format Option Relational
