examples/data_cleaning.ml: Cq Deleprop Format List Option Relational
