examples/warehouse.ml: Cq Deleprop Format Hypergraph List Relational
