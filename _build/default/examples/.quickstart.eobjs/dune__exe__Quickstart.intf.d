examples/quickstart.mli:
